package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/board"
	"repro/internal/dpu"
	"repro/internal/faults"
	"repro/internal/imagenet"
	"repro/internal/ml/crossval"
	"repro/internal/ml/features"
	"repro/internal/ml/rforest"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sysfs"
	"repro/internal/trace"
)

// SensitiveChannels returns the six channels Table III evaluates: the
// four current sensors of Table II plus the FPGA sensor's voltage and
// power channels.
func SensitiveChannels() []Channel {
	return []Channel{
		{Label: board.SensorCPUFull, Kind: Current},
		{Label: board.SensorCPULow, Kind: Current},
		{Label: board.SensorDDR, Kind: Current},
		{Label: board.SensorFPGA, Kind: Current},
		{Label: board.SensorFPGA, Kind: Voltage},
		{Label: board.SensorFPGA, Kind: Power},
	}
}

// FingerprintConfig parameterizes the DPU fingerprinting experiment.
type FingerprintConfig struct {
	// Seed for the whole experiment. Zero means 1.
	Seed int64
	// Models to fingerprint by zoo name; empty means all 39.
	Models []string
	// TracesPerModel collected in the offline phase; zero means 12 (the
	// paper's 10-fold CV needs at least 10; EXPERIMENTS.md documents the
	// budget reduction from the paper's full capture).
	TracesPerModel int
	// TraceDuration of each capture; zero means the paper's 5 s.
	TraceDuration time.Duration
	// Warmup before each capture; zero means 200 ms.
	Warmup time.Duration
	// Channels to evaluate; empty means SensitiveChannels().
	Channels []Channel
	// Durations evaluated as prefixes of each capture; empty means
	// 1 s..5 s, Table III's sweep.
	Durations []time.Duration
	// Folds of cross-validation; zero means the paper's 10.
	Folds int
	// Trees and MaxDepth of the forest; zero means the paper's 100 / 32.
	Trees    int
	MaxDepth int
	// Bins is the temporal feature resolution; zero means
	// features.DefaultBins.
	Bins int
	// SpectralBins appends the magnitudes of that many low-frequency DFT
	// coefficients to each feature vector (0 disables). Spectral
	// features are phase-invariant: they encode the victim's inference
	// period regardless of where in the loop the capture started.
	SpectralBins int
	// Parallelism bounds concurrent trace captures and evaluations; zero
	// means GOMAXPROCS.
	Parallelism int
	// UpdateInterval overrides the sensors' hwmon update interval (the
	// ablation knob); zero keeps the 35 ms board default.
	UpdateInterval time.Duration
	// Faults optionally injects a fault profile into every capture
	// board; recorders then run with the resilient retry policy and
	// record unrecoverable samples as NaN gaps.
	Faults *faults.Profile
}

func (cfg *FingerprintConfig) fillDefaults() {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Models) == 0 {
		for _, m := range dpu.Zoo() {
			cfg.Models = append(cfg.Models, m.Name)
		}
	}
	if cfg.TracesPerModel == 0 {
		cfg.TracesPerModel = 12
	}
	if cfg.TraceDuration == 0 {
		cfg.TraceDuration = 5 * time.Second
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 200 * time.Millisecond
	}
	if len(cfg.Channels) == 0 {
		cfg.Channels = SensitiveChannels()
	}
	if len(cfg.Durations) == 0 {
		cfg.Durations = []time.Duration{
			1 * time.Second, 2 * time.Second, 3 * time.Second,
			4 * time.Second, 5 * time.Second,
		}
	}
	if cfg.Folds == 0 {
		cfg.Folds = 10
	}
	if cfg.Trees == 0 {
		cfg.Trees = 100
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 32
	}
	if cfg.Bins == 0 {
		cfg.Bins = features.DefaultBins
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
}

func (cfg *FingerprintConfig) validate() error {
	if cfg.TracesPerModel < cfg.Folds {
		return fmt.Errorf("core: %d traces/model cannot support %d-fold CV",
			cfg.TracesPerModel, cfg.Folds)
	}
	for _, d := range cfg.Durations {
		if d > cfg.TraceDuration {
			return fmt.Errorf("core: duration %v exceeds capture length %v", d, cfg.TraceDuration)
		}
	}
	if cfg.Parallelism < 1 {
		return errors.New("core: non-positive parallelism")
	}
	return nil
}

// Capture is one victim run observed on every channel simultaneously.
type Capture struct {
	// Model is the zoo name of the victim accelerator.
	Model string
	// Rep is the repetition index.
	Rep int
	// Traces per channel.
	Traces map[Channel]*trace.Trace
}

// CollectDPUTraces runs the offline collection phase: for every model
// and repetition, deploy the DPU on a fresh board, run inference for the
// capture duration, and record all channels through unprivileged hwmon
// reads. Captures are returned grouped by model, in cfg.Models order.
func CollectDPUTraces(cfg FingerprintConfig) ([]*Capture, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shards := make([]runner.Shard[*Capture], 0, len(cfg.Models)*cfg.TracesPerModel)
	for _, m := range cfg.Models {
		if _, err := dpu.ZooModel(m); err != nil {
			return nil, err
		}
		for r := 0; r < cfg.TracesPerModel; r++ {
			m, r := m, r
			shards = append(shards, runner.Shard[*Capture]{
				// The key matches captureSeed's "model/rep" derivation, so
				// the shard seed the runner hands back is exactly the seed
				// the serial collection loop has always used.
				Key: fmt.Sprintf("%s/%d", m, r),
				Run: func(ctx context.Context, info runner.Info) (*Capture, error) {
					return captureOne(ctx, cfg, m, r, info.Seed)
				},
			})
		}
	}
	obs.Eventf("collect: %d captures (%d models x %d reps) starting",
		len(shards), len(cfg.Models), cfg.TracesPerModel)
	results, err := runner.Run(context.Background(), runner.Config{
		Name:    "collect",
		Seed:    cfg.Seed,
		Workers: cfg.Parallelism,
	}, shards)
	if err != nil {
		return nil, err
	}
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	return runner.Values(results), nil
}

// captureSeed derives a deterministic per-capture seed from the
// experiment seed, the model name, and the repetition. It is the
// runner's shard-seed derivation over the "model/rep" key, so seeds are
// identical whether a capture runs serially or as a campaign shard.
func captureSeed(root int64, model string, rep int) int64 {
	return runner.ShardSeed(root, fmt.Sprintf("%s/%d", model, rep))
}

// captureOne runs one victim inference session and records every
// channel. seed is the capture's shard seed (captureSeed of model/rep);
// ctx is polled between the warmup and capture stretches.
func captureOne(ctx context.Context, cfg FingerprintConfig, modelName string, rep int, seed int64) (*Capture, error) {
	b, err := board.NewZCU102(board.Config{
		Seed:           seed,
		UpdateInterval: cfg.UpdateInterval,
		Faults:         cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	// Victim: deploy the DPU and start the query loop.
	queries, err := imagenet.New(b.Engine().Stream("queries"))
	if err != nil {
		return nil, err
	}
	engine, err := dpu.NewEngine(dpu.EngineConfig{
		Queries:        queries,
		SetCPUFullUtil: b.CPUFull().SetUtil,
		SetCPULowUtil:  b.CPULow().SetUtil,
		SetDDRUtil:     b.DDR().SetUtil,
	})
	if err != nil {
		return nil, err
	}
	if err := b.Fabric().Place(engine, b.Fabric().SpreadEvenly()); err != nil {
		return nil, err
	}
	m, err := dpu.ZooModel(modelName)
	if err != nil {
		return nil, err
	}
	if err := engine.LoadModel(m); err != nil {
		return nil, err
	}

	// Attacker: one recorder per channel at the hwmon update interval.
	attacker, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return nil, err
	}
	dev, err := b.Sensor(board.SensorFPGA)
	if err != nil {
		return nil, err
	}
	interval := dev.UpdateInterval()
	recorders := make(map[Channel]*trace.Recorder, len(cfg.Channels))
	for _, ch := range cfg.Channels {
		rec, err := attacker.NewRecorder(ch, interval)
		if err != nil {
			return nil, err
		}
		// Size the trace for the nominal capture plus the top-up budget
		// below, so the sampling loop never regrows the backing array.
		expect := int((cfg.TraceDuration+interval)/interval) + 1
		rec.Reserve(expect + expect/4 + 2)
		if inj := b.FaultInjector(); inj != nil {
			rec.SetPolicy(recorderHooks(attacker, ch, interval,
				b.Engine().Stream(fmt.Sprintf("backoff/%s/%s", ch.Label, ch.Kind))))
			rec.SetFaults(inj.SamplerFaults(fmt.Sprintf("recorder/%s/%s", ch.Label, ch.Kind)))
		}
		recorders[ch] = rec
	}

	b.Run(cfg.Warmup)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Register in cfg.Channels order: step order within a tick is then
	// independent of map iteration (read-only recorders make this a
	// cosmetic guarantee, but it keeps the engine wiring reproducible).
	for _, ch := range cfg.Channels {
		rec := recorders[ch]
		rec.Reset()
		if err := b.Engine().Register(fmt.Sprintf("recorder/%s", ch), rec); err != nil {
			return nil, err
		}
	}
	span := obs.StartSpan("core.capture", b.Engine())
	// One extra update beyond TraceDuration so every prefix fits. The
	// run is chunked at the sampling interval with the context polled
	// between chunks, so cancellation lands mid-trace, not only at
	// shard boundaries.
	target := cfg.TraceDuration + interval
	for advanced := time.Duration(0); advanced < target; {
		if err := ctx.Err(); err != nil {
			span.End()
			return nil, err
		}
		chunk := interval
		if advanced+chunk > target {
			chunk = target - advanced
		}
		b.Run(chunk)
		advanced += chunk
	}
	// Injected jitter and dropouts can leave traces short of the sample
	// budget the duration sweep needs. Top up with a bounded number of
	// extra updates, then pad what is still missing with NaN gaps.
	needed := int(cfg.TraceDuration / interval)
	for extra, maxExtra := 0, needed/4+2; extra < maxExtra; extra++ {
		if err := ctx.Err(); err != nil {
			span.End()
			return nil, err
		}
		short := false
		for _, rec := range recorders {
			if tr, err := rec.Trace(); err == nil && len(tr.Samples) < needed {
				short = true
				break
			}
		}
		if !short {
			break
		}
		b.Run(interval)
	}
	span.End()

	cap := &Capture{Model: modelName, Rep: rep, Traces: make(map[Channel]*trace.Trace)}
	rateHist := obs.H("attacker.sample_rate_hz")
	for ch, rec := range recorders {
		tr, err := rec.Trace()
		if err != nil {
			return nil, fmt.Errorf("core: channel %v: %w", ch, err)
		}
		tr.PadGaps(needed)
		cap.Traces[ch] = tr
		// The achieved sampling rate in simulated time: the quantity the
		// channel capacity of every experiment depends on. One value per
		// channel per capture.
		if d := tr.Duration(); d > 0 {
			rateHist.Observe(float64(len(tr.Samples)) / d.Seconds())
		}
	}
	obs.C("core.captures").Inc()
	return cap, nil
}

// AccuracyCell is one Table III cell.
type AccuracyCell struct {
	Channel  Channel
	Duration time.Duration
	Top1     float64
	Top5     float64
}

// FingerprintResult is the Table III grid plus the captures that
// produced it (reusable for Fig. 3 rendering).
type FingerprintResult struct {
	Cells    []AccuracyCell
	Captures []*Capture
	// Classes is the number of distinct models (random-guess baseline =
	// 1/Classes, quoted as 0.0256 in the paper for 39 classes).
	Classes int
}

// Cell returns the grid cell for a channel and duration.
func (r *FingerprintResult) Cell(ch Channel, d time.Duration) (AccuracyCell, error) {
	for _, c := range r.Cells {
		if c.Channel == ch && c.Duration == d {
			return c, nil
		}
	}
	return AccuracyCell{}, fmt.Errorf("core: no cell for %v at %v", ch, d)
}

// Fingerprint runs the full Table III experiment: offline collection,
// then per-(channel,duration) cross-validated random-forest evaluation.
func Fingerprint(cfg FingerprintConfig) (*FingerprintResult, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	captures, err := CollectDPUTraces(cfg)
	if err != nil {
		return nil, err
	}
	return EvaluateCaptures(cfg, captures)
}

// EvaluateCaptures runs the classification phase over already-collected
// captures (separated so ablations can reuse one collection).
func EvaluateCaptures(cfg FingerprintConfig, captures []*Capture) (*FingerprintResult, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(captures) == 0 {
		return nil, errors.New("core: no captures")
	}
	type cell struct {
		ch Channel
		d  time.Duration
	}
	var cells []cell
	for _, ch := range cfg.Channels {
		for _, d := range cfg.Durations {
			cells = append(cells, cell{ch, d})
		}
	}
	obs.Eventf("evaluate: %d (channel,duration) cells starting", len(cells))
	shards := make([]runner.Shard[AccuracyCell], len(cells))
	for i, c := range cells {
		c := c
		shards[i] = runner.Shard[AccuracyCell]{
			// evaluateCell re-derives this same key's seed internally via
			// captureSeed, so cell outcomes are independent of scheduling.
			Key: fmt.Sprintf("eval/%v/%v", c.ch, c.d),
			Run: func(ctx context.Context, info runner.Info) (AccuracyCell, error) {
				return evaluateCell(cfg, captures, c.ch, c.d)
			},
		}
	}
	results, err := runner.Run(context.Background(), runner.Config{
		Name:    "evaluate",
		Seed:    cfg.Seed,
		Workers: cfg.Parallelism,
	}, shards)
	if err != nil {
		return nil, err
	}
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	out := runner.Values(results)
	classes := map[string]bool{}
	for _, c := range captures {
		classes[c.Model] = true
	}
	// Grid-mean accuracies, mirrored into the run ledger as the
	// experiment's headline quality figures.
	if len(out) > 0 {
		var top1, top5 float64
		for _, c := range out {
			top1 += c.Top1
			top5 += c.Top5
		}
		obs.G("fingerprint.top1_mean").Set(top1 / float64(len(out)))
		obs.G("fingerprint.top5_mean").Set(top5 / float64(len(out)))
	}
	return &FingerprintResult{Cells: out, Captures: captures, Classes: len(classes)}, nil
}

// evaluateCell builds the dataset for one channel/duration and runs the
// cross-validated forest.
func evaluateCell(cfg FingerprintConfig, captures []*Capture, ch Channel, d time.Duration) (AccuracyCell, error) {
	var ds features.Dataset
	for _, cap := range captures {
		tr, ok := cap.Traces[ch]
		if !ok {
			return AccuracyCell{}, fmt.Errorf("core: capture %s/%d lacks channel %v", cap.Model, cap.Rep, ch)
		}
		prefix, err := tr.Prefix(d)
		if err != nil {
			return AccuracyCell{}, err
		}
		vec, err := features.FromTraceWithSpectrum(prefix, cfg.Bins, cfg.SpectralBins)
		if err != nil {
			return AccuracyCell{}, err
		}
		ds.Add(vec, cap.Model)
	}
	seed := captureSeed(cfg.Seed, fmt.Sprintf("eval/%v/%v", ch, d), 0)
	rng := rand.New(rand.NewSource(seed))
	// The cross-validated evaluation is folds x (train + predict); its
	// span is the classifier cost of one Table III cell.
	span := obs.StartSpan("core.crossval", nil)
	res, err := crossval.Evaluate(&ds, rforest.Config{
		Trees:    cfg.Trees,
		MaxDepth: cfg.MaxDepth,
		Rand:     rng,
	}, cfg.Folds, rng)
	span.End()
	if err != nil {
		return AccuracyCell{}, err
	}
	return AccuracyCell{Channel: ch, Duration: d, Top1: res.Top1, Top5: res.Top5}, nil
}
