package core

import (
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/sysfs"
	"repro/internal/trace"
)

// Integration tests: several attack stages composed on one live board,
// the way the CLI and examples use the library.

// TestIntegrationTriageThenFingerprint runs the realistic end-to-end
// story: discover sensors, triage them under victim load, record the
// top-ranked channel, and classify a black-box victim with a model
// trained on other captures.
func TestIntegrationTriageThenFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-stage integration")
	}
	// Stage 1: offline training set.
	cfg := FingerprintConfig{
		Models:         []string{"MobileNet-V1", "ResNet-50", "VGG-19"},
		TracesPerModel: 6,
		TraceDuration:  2 * time.Second,
		Durations:      []time.Duration{2 * time.Second},
		Folds:          3,
		Trees:          30,
		Channels:       []Channel{{Label: board.SensorFPGA, Kind: Current}},
	}
	caps, err := CollectDPUTraces(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainClassifier(cfg, caps, cfg.Channels[0], 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 2: a black-box board the attacker has never seen. Triage
	// finds the FPGA sensor; the recorder taps it; the classifier names
	// the model.
	b, err := board.NewZCU102(board.Config{Seed: 4242})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := deployDPUForTest(b) // runs ResNet-50
	if err != nil {
		t.Fatal(err)
	}
	_ = victim
	b.Run(100 * time.Millisecond)
	atk, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Survey(b, atk, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The triage's top-3 must contain the FPGA sensor; tap it by label.
	var fpgaLabel string
	for _, r := range rows[:3] {
		if r.Label == board.SensorFPGA {
			fpgaLabel = r.Label
		}
	}
	if fpgaLabel == "" {
		t.Fatalf("triage missed the FPGA sensor: %+v", rows[:3])
	}
	dev, _ := b.Sensor(fpgaLabel)
	rec, err := atk.NewRecorder(Channel{Label: fpgaLabel, Kind: Current}, dev.UpdateInterval())
	if err != nil {
		t.Fatal(err)
	}
	b.Engine().MustRegister("integration-rec", rec)
	b.Run(2*time.Second + dev.UpdateInterval())
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	blackbox := &Capture{
		Model: "?",
		Traces: map[Channel]*trace.Trace{
			{Label: fpgaLabel, Kind: Current}: tr,
		},
	}
	guess, err := clf.Classify(blackbox)
	if err != nil {
		t.Fatal(err)
	}
	if guess != "ResNet-50" {
		t.Fatalf("black-box classified as %s, want ResNet-50", guess)
	}
}

// TestIntegrationMitigationStopsRecorder shows the whole sampling
// pipeline failing cleanly mid-run when the mitigation lands.
func TestIntegrationMitigationStopsRecorder(t *testing.T) {
	b, err := board.NewZCU102(board.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	atk, _ := NewAttacker(b.Sysfs(), sysfs.Nobody)
	dev, _ := b.Sensor(board.SensorFPGA)
	rec, err := atk.NewRecorder(Channel{Label: board.SensorFPGA, Kind: Current}, dev.UpdateInterval())
	if err != nil {
		t.Fatal(err)
	}
	b.Engine().MustRegister("rec", rec)
	b.Run(200 * time.Millisecond)
	if err := b.Hwmon().RestrictAllToRoot(); err != nil {
		t.Fatal(err)
	}
	b.Run(200 * time.Millisecond)
	tr, err := rec.Trace()
	if err == nil {
		t.Fatal("recorder kept sampling after the mitigation")
	}
	if len(tr.Samples) == 0 {
		t.Fatal("pre-mitigation samples lost")
	}
}
