package core

import (
	"context"
	"errors"
	"io/fs"
	"math"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/faults"
	"repro/internal/sysfs"
)

func newTestSampler(t *testing.T) (*Sampler, *board.SoC) {
	t.Helper()
	b, err := board.NewZCU102(board.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Run(10 * time.Millisecond)
	atk, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(b, atk, Channel{Label: board.SensorFPGA, Kind: Current}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return s, b
}

func TestSamplerRetryOutcomes(t *testing.T) {
	errPerm := errors.New("permission denied")
	tests := []struct {
		name string
		// probe is scripted per attempt; called with the 1-based attempt
		// number.
		probe   func(attempt int) (float64, error)
		policy  RetryPolicy
		wantVal float64
		wantErr error // nil: expect success
		lost    bool  // expect (NaN, ErrSampleLost)
	}{
		{
			name:    "clean read needs one attempt",
			probe:   func(int) (float64, error) { return 1.5, nil },
			wantVal: 1.5,
		},
		{
			name: "transient errors recover within budget",
			probe: func(attempt int) (float64, error) {
				if attempt < 3 {
					return 0, faults.ErrAgain
				}
				return 2.5, nil
			},
			// The default deadline (one interval) only fits one backoff;
			// two retries need room.
			policy: RetryPolicy{
				MaxAttempts:    4,
				BaseBackoff:    time.Millisecond,
				MaxBackoff:     8 * time.Millisecond,
				SampleDeadline: 10 * time.Millisecond,
			},
			wantVal: 2.5,
		},
		{
			name:  "transient exhausted becomes a lost sample",
			probe: func(int) (float64, error) { return 0, faults.ErrIO },
			lost:  true,
		},
		{
			name:    "non-transient error is fatal immediately",
			probe:   func(int) (float64, error) { return 0, errPerm },
			wantErr: errPerm,
		},
		{
			name:  "deadline bounds the retry budget before MaxAttempts",
			probe: func(int) (float64, error) { return 0, faults.ErrAgain },
			policy: RetryPolicy{
				MaxAttempts:    100,
				BaseBackoff:    time.Millisecond,
				MaxBackoff:     time.Millisecond,
				SampleDeadline: 2 * time.Millisecond,
			},
			lost: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, _ := newTestSampler(t)
			if tt.policy.MaxAttempts != 0 {
				p := tt.policy
				p.Transient = faults.IsTransient
				s.SetPolicy(p)
			}
			attempt := 0
			s.probe = func() (float64, error) {
				attempt++
				return tt.probe(attempt)
			}
			v, err := s.Read(context.Background())
			switch {
			case tt.lost:
				if !errors.Is(err, ErrSampleLost) || !math.IsNaN(v) {
					t.Fatalf("got (%v, %v), want (NaN, ErrSampleLost)", v, err)
				}
			case tt.wantErr != nil:
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("err = %v, want %v", err, tt.wantErr)
				}
				if attempt != 1 {
					t.Errorf("fatal error retried %d times", attempt-1)
				}
			default:
				if err != nil {
					t.Fatal(err)
				}
				if v != tt.wantVal {
					t.Fatalf("value = %v, want %v", v, tt.wantVal)
				}
			}
		})
	}
}

func TestSamplerDeadlineCountsAttempts(t *testing.T) {
	// With a 1 ms flat backoff and a 2 ms deadline, exactly two backoffs
	// fit: attempts 1..3 probe, the third failure lands past the budget.
	s, _ := newTestSampler(t)
	s.SetPolicy(RetryPolicy{
		MaxAttempts:    100,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     time.Millisecond,
		SampleDeadline: 2 * time.Millisecond,
		Transient:      faults.IsTransient,
	})
	attempts := 0
	s.probe = func() (float64, error) { attempts++; return 0, faults.ErrAgain }
	if _, err := s.Read(context.Background()); !errors.Is(err, ErrSampleLost) {
		t.Fatalf("err = %v, want ErrSampleLost", err)
	}
	if attempts != 3 {
		t.Errorf("probed %d times, want 3 (two backoffs inside the 2 ms deadline)", attempts)
	}
}

func TestSamplerBackoffAdvancesSimTime(t *testing.T) {
	s, b := newTestSampler(t)
	s.SetPolicy(RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		// Generous deadline so MaxAttempts is the binding limit.
		SampleDeadline: time.Second,
		Transient:      faults.IsTransient,
	})
	attempt := 0
	s.probe = func() (float64, error) {
		attempt++
		if attempt < 3 {
			return 0, faults.ErrAgain
		}
		return 1, nil
	}
	start := b.Engine().Now()
	if _, err := s.Read(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Two retries back off 1 ms then 2 ms, in simulated time.
	if got, want := b.Engine().Now()-start, 3*time.Millisecond; got != want {
		t.Errorf("backoff advanced sim clock by %v, want %v", got, want)
	}
}

func TestSamplerContextCancelDuringBackoff(t *testing.T) {
	s, _ := newTestSampler(t)
	ctx, cancel := context.WithCancel(context.Background())
	s.probe = func() (float64, error) {
		cancel() // cancelled while the loop is mid-retry
		return 0, faults.ErrAgain
	}
	if _, err := s.Read(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSamplerReresolvesAfterHotplug(t *testing.T) {
	// A probe holding a pre-renumber path fails with ErrNotExist; the
	// sampler must re-discover through the attacker and succeed on the
	// next attempt with the fresh probe.
	s, _ := newTestSampler(t)
	stale := true
	real := s.probe
	s.probe = func() (float64, error) {
		if stale {
			stale = false
			return 0, fs.ErrNotExist
		}
		return real()
	}
	v, err := s.Read(context.Background())
	if err != nil {
		t.Fatalf("read after re-resolve: %v", err)
	}
	if math.IsNaN(v) {
		t.Errorf("re-resolved read returned NaN")
	}
	if stale {
		t.Error("stale probe was never consulted")
	}
}

func TestSamplerDropoutBurst(t *testing.T) {
	s, b := newTestSampler(t)
	s.faults = &scriptedFaults{dropouts: []int{2}}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		v, err := s.Sample(ctx)
		if !errors.Is(err, ErrSampleLost) || !math.IsNaN(v) {
			t.Fatalf("burst sample %d: got (%v, %v), want (NaN, ErrSampleLost)", i, v, err)
		}
	}
	if v, err := s.Sample(ctx); err != nil || math.IsNaN(v) {
		t.Fatalf("post-burst sample: got (%v, %v), want a live read", v, err)
	}
	// Each Sample still advances exactly one interval: 3 samples, 3 ms.
	if now := b.Engine().Now(); now != 10*time.Millisecond+3*time.Millisecond {
		t.Errorf("sim clock at %v after 3 samples, want 13ms", now)
	}
}

// scriptedFaults feeds a fixed dropout/jitter schedule to a sampler.
type scriptedFaults struct {
	dropouts []int
	jitters  []time.Duration
}

func (f *scriptedFaults) DropoutLen() int {
	if len(f.dropouts) == 0 {
		return 0
	}
	n := f.dropouts[0]
	f.dropouts = f.dropouts[1:]
	return n
}

func (f *scriptedFaults) JitterDelay(time.Duration) time.Duration {
	if len(f.jitters) == 0 {
		return 0
	}
	d := f.jitters[0]
	f.jitters = f.jitters[1:]
	return d
}
