package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/board"
)

// Cancellation must land inside a trace, not only between shards: the
// capture and covert loops are chunked at the sampling interval with
// the context polled between chunks.

// countdownCtx reports cancellation after its Err has been consulted n
// times — a deterministic stand-in for a deadline firing mid-capture.
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	c.n--
	if c.n < 0 {
		return context.Canceled
	}
	return nil
}

func TestCaptureOneCancelsMidTrace(t *testing.T) {
	cfg := FingerprintConfig{
		Seed:           3,
		TraceDuration:  2 * time.Second,
		Channels:       []Channel{{Label: board.SensorFPGA, Kind: Current}},
		TracesPerModel: 1,
	}
	cfg.fillDefaults()

	// A 2 s capture at the 35 ms update interval polls ctx dozens of
	// times; cancelling on the 5th poll aborts well inside the trace.
	ctx := &countdownCtx{Context: context.Background(), n: 5}
	start := time.Now()
	_, err := captureOne(ctx, cfg, "MobileNet-V1", 0, captureSeed(cfg.Seed, "MobileNet-V1", 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Sanity: a full 2 s capture takes visibly longer than an abort on
	// the 5th chunk; this is a smoke bound, not a benchmark.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled capture still ran %v", elapsed)
	}

	// An uncancelled context completes the same capture.
	if _, err := captureOne(context.Background(), cfg, "MobileNet-V1", 0,
		captureSeed(cfg.Seed, "MobileNet-V1", 0)); err != nil {
		t.Fatalf("clean capture: %v", err)
	}
}

func TestCovertOnceCancelsMidTransmission(t *testing.T) {
	cfg := CovertConfig{Seed: 3, PayloadBits: 64, SymbolUpdates: 1, Groups: 40, ChunkBits: 32}
	ctx := &countdownCtx{Context: context.Background(), n: 5}
	if _, err := covertOnce(ctx, cfg, cfg.Seed, cfg.PayloadBits); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := covertOnce(context.Background(), cfg, cfg.Seed, cfg.PayloadBits); err != nil {
		t.Fatalf("clean transmission: %v", err)
	}
}
