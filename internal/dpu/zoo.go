package dpu

import "fmt"

// Zoo returns the 39 image-recognition models the fingerprinting
// experiment deploys, spanning 7 architecture families, mirroring the
// complete Vitis AI Library image-recognition suite used in the paper.
//
// Layer workloads are derived from each architecture's published block
// structure (channel widths, strides, block counts), so the relative
// compute/memory proportions — the quantities the side channel sees —
// track the real networks.
func Zoo() []*Model {
	models := []*Model{
		// --- VGG family (4) ---
		vgg("VGG-11", []int{1, 1, 2, 2, 2}),
		vgg("VGG-13", []int{2, 2, 2, 2, 2}),
		vgg("VGG-16", []int{2, 2, 3, 3, 3}),
		vgg("VGG-19", []int{2, 2, 4, 4, 4}),

		// --- ResNet family (7) ---
		resnet("ResNet-18", 224, false, [4]int{2, 2, 2, 2}, 1.0),
		resnet("ResNet-34", 224, false, [4]int{3, 4, 6, 3}, 1.0),
		resnet("ResNet-50", 224, true, [4]int{3, 4, 6, 3}, 1.0),
		resnet("ResNet-101", 224, true, [4]int{3, 4, 23, 3}, 1.0),
		resnet("ResNet-152", 224, true, [4]int{3, 8, 36, 3}, 1.0),
		resnet("ResNet-V2-50", 299, true, [4]int{3, 4, 6, 3}, 1.0),
		resnet("ResNet-V2-101", 299, true, [4]int{3, 4, 23, 3}, 1.0),

		// --- Inception family (6) ---
		inception("Inception-V1", 224, 2, []int{2, 5, 2}, 1.0),
		inception("Inception-V2", 224, 3, []int{3, 5, 2}, 1.1),
		inception("Inception-V3", 299, 3, []int{3, 5, 3}, 1.3),
		inception("Inception-V4", 299, 4, []int{4, 7, 3}, 1.4),
		inception("Inception-ResNet-V2", 299, 3, []int{5, 10, 5}, 1.2),
		xception(),

		// --- MobileNet family (7) ---
		mobilenetV1("MobileNet-V1-0.25", 128, 0.25),
		mobilenetV1("MobileNet-V1-0.5", 160, 0.5),
		mobilenetV1("MobileNet-V1", 224, 1.0),
		mobilenetV2("MobileNet-V2-0.5", 224, 0.5),
		mobilenetV2("MobileNet-V2", 224, 1.0),
		mobilenetV3("MobileNet-V3-Small", 224, false),
		mobilenetV3("MobileNet-V3-Large", 224, true),

		// --- EfficientNet family (6) ---
		efficientNetLite("EfficientNet-Lite0", 224, 1.0, 1.0),
		efficientNetLite("EfficientNet-Lite1", 240, 1.0, 1.1),
		efficientNetLite("EfficientNet-Lite2", 260, 1.1, 1.2),
		efficientNetLite("EfficientNet-Lite3", 280, 1.2, 1.4),
		efficientNetLite("EfficientNet-Lite4", 300, 1.4, 1.8),
		efficientNetLite("EfficientNet-B0", 224, 1.0, 1.25),

		// --- SqueezeNet family (3) ---
		squeezenet("SqueezeNet-1.0", 7, 96),
		squeezenet("SqueezeNet-1.1", 3, 64),
		squeezenext(),

		// --- DenseNet family (6) ---
		densenet("DenseNet-121", 224, 32, [4]int{6, 12, 24, 16}),
		densenet("DenseNet-161", 224, 48, [4]int{6, 12, 36, 24}),
		densenet("DenseNet-169", 224, 32, [4]int{6, 12, 32, 32}),
		densenet("DenseNet-201", 224, 32, [4]int{6, 12, 48, 32}),
		densenet("DenseNet-264", 224, 32, [4]int{6, 12, 64, 48}),
		densenet("DenseNet-121-160", 160, 32, [4]int{6, 12, 24, 16}),
	}
	return models
}

// ZooFamilies returns the distinct family names in the zoo, in first-
// appearance order.
func ZooFamilies() []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range Zoo() {
		if !seen[m.Family] {
			seen[m.Family] = true
			out = append(out, m.Family)
		}
	}
	return out
}

// ZooModel returns the zoo model with the given name.
func ZooModel(name string) (*Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("dpu: no zoo model %q", name)
}

// Fig3Models returns the six models whose traces Fig. 3 plots.
func Fig3Models() []string {
	return []string{
		"MobileNet-V1", "SqueezeNet-1.1", "EfficientNet-Lite0",
		"Inception-V3", "ResNet-50", "VGG-19",
	}
}

func scale(c int, alpha float64) int {
	s := int(float64(c)*alpha + 0.5)
	if s < 8 {
		s = 8
	}
	return s
}

// vgg builds a VGG-style stack: five conv stages with max-pooling and a
// three-layer classifier.
func vgg(name string, reps []int) *Model {
	b := newBuilder(name, "VGG", 224, 224, 3)
	widths := []int{64, 128, 256, 512, 512}
	for stage, n := range reps {
		for i := 0; i < n; i++ {
			b.conv(3, 1, widths[stage])
		}
		b.pool(2, 2)
	}
	b.dense(4096)
	b.dense(4096)
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}

// resnet builds a residual network with either basic (2×3×3) or
// bottleneck (1-3-1) blocks.
func resnet(name string, input int, bottleneck bool, blocks [4]int, width float64) *Model {
	b := newBuilder(name, "ResNet", input, input, 3)
	b.conv(7, 2, scale(64, width))
	b.pool(3, 2)
	stageC := []int{64, 128, 256, 512}
	for stage, n := range blocks {
		c := scale(stageC[stage], width)
		for i := 0; i < n; i++ {
			stride := 1
			if i == 0 && stage > 0 {
				stride = 2
			}
			if bottleneck {
				b.conv(1, stride, c)
				b.conv(3, 1, c)
				b.conv(1, 1, 4*c)
			} else {
				b.conv(3, stride, c)
				b.conv(3, 1, c)
			}
			b.eltwise()
		}
	}
	b.gap()
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}

// inception builds an Inception-style network: a conv stem followed by
// stages of mixed blocks. Each mixed block is modeled as its dominant
// parallel branches (1×1 reduction, 3×3 tower, pooling projection)
// followed by a channel concat.
func inception(name string, input, stemDepth int, mixed []int, width float64) *Model {
	b := newBuilder(name, "Inception", input, input, 3)
	b.conv(3, 2, scale(32, width))
	for i := 1; i < stemDepth; i++ {
		b.conv(3, 1, scale(64, width))
	}
	b.pool(3, 2)
	b.conv(1, 1, scale(80, width))
	b.conv(3, 1, scale(192, width))
	b.pool(3, 2)
	stageC := []int{256, 512, 1024}
	for stage, n := range mixed {
		c := scale(stageC[stage], width)
		for i := 0; i < n; i++ {
			// branch 1: 1x1; branch 2: 1x1 -> 3x3; branch 3: pool proj.
			b.conv(1, 1, c/4)
			b.conv(1, 1, c/8)
			b.conv(3, 1, c/2)
			b.conv(1, 1, c/4)
			b.eltwise() // concat
			b.setChannels(c)
		}
		if stage < len(mixed)-1 {
			b.pool(3, 2)
		}
	}
	b.gap()
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}

// xception builds the depthwise-separable Inception variant.
func xception() *Model {
	b := newBuilder("Xception", "Inception", 299, 299, 3)
	b.conv(3, 2, 32)
	b.conv(3, 1, 64)
	for _, c := range []int{128, 256, 728} {
		b.conv(1, 2, c) // strided shortcut projection
		b.dwconv(3, 1)
		b.conv(1, 1, c)
		b.eltwise()
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 3; j++ {
			b.dwconv(3, 1)
			b.conv(1, 1, 728)
		}
		b.eltwise()
	}
	b.conv(1, 2, 1024)
	b.dwconv(3, 1)
	b.conv(1, 1, 1536)
	b.dwconv(3, 1)
	b.conv(1, 1, 2048)
	b.gap()
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}

// mobilenetV1 builds the 13-block depthwise-separable stack.
func mobilenetV1(name string, input int, alpha float64) *Model {
	b := newBuilder(name, "MobileNet", input, input, 3)
	b.conv(3, 2, scale(32, alpha))
	type blk struct{ stride, outC int }
	blocks := []blk{
		{1, 64}, {2, 128}, {1, 128}, {2, 256}, {1, 256},
		{2, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512},
		{2, 1024}, {1, 1024},
	}
	for _, bk := range blocks {
		b.dwconv(3, bk.stride)
		b.conv(1, 1, scale(bk.outC, alpha))
	}
	b.gap()
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}

// mobilenetV2 builds the inverted-residual stack (expansion factor 6).
func mobilenetV2(name string, input int, alpha float64) *Model {
	b := newBuilder(name, "MobileNet", input, input, 3)
	b.conv(3, 2, scale(32, alpha))
	type blk struct{ t, c, n, s int }
	cfg := []blk{
		{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
		{6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
	}
	for _, bk := range cfg {
		c := scale(bk.c, alpha)
		for i := 0; i < bk.n; i++ {
			stride := 1
			if i == 0 {
				stride = bk.s
			}
			b.conv(1, 1, c*bk.t) // expand
			b.dwconv(3, stride)
			b.conv(1, 1, c) // project
			if stride == 1 {
				b.eltwise()
			}
		}
	}
	b.conv(1, 1, scale(1280, alpha))
	b.gap()
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}

// mobilenetV3 builds the V3 small/large variants (V2-style blocks with
// the published channel schedule).
func mobilenetV3(name string, input int, large bool) *Model {
	b := newBuilder(name, "MobileNet", input, input, 3)
	b.conv(3, 2, 16)
	type blk struct{ exp, c, k, s int }
	var cfg []blk
	if large {
		cfg = []blk{
			{16, 16, 3, 1}, {64, 24, 3, 2}, {72, 24, 3, 1},
			{72, 40, 5, 2}, {120, 40, 5, 1}, {120, 40, 5, 1},
			{240, 80, 3, 2}, {200, 80, 3, 1}, {184, 80, 3, 1}, {184, 80, 3, 1},
			{480, 112, 3, 1}, {672, 112, 3, 1},
			{672, 160, 5, 2}, {960, 160, 5, 1}, {960, 160, 5, 1},
		}
	} else {
		cfg = []blk{
			{16, 16, 3, 2}, {72, 24, 3, 2}, {88, 24, 3, 1},
			{96, 40, 5, 2}, {240, 40, 5, 1}, {240, 40, 5, 1},
			{120, 48, 5, 1}, {144, 48, 5, 1},
			{288, 96, 5, 2}, {576, 96, 5, 1}, {576, 96, 5, 1},
		}
	}
	for _, bk := range cfg {
		b.conv(1, 1, bk.exp)
		b.dwconv(bk.k, bk.s)
		b.conv(1, 1, bk.c)
		if bk.s == 1 {
			b.eltwise()
		}
	}
	head := 576
	if large {
		head = 960
	}
	b.conv(1, 1, head)
	b.gap()
	b.dense(1280)
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}

// efficientNetLite builds the EfficientNet-Lite compound-scaled stack.
func efficientNetLite(name string, input int, widthMul, depthMul float64) *Model {
	b := newBuilder(name, "EfficientNet", input, input, 3)
	b.conv(3, 2, scale(32, widthMul))
	type blk struct{ t, c, n, s, k int }
	cfg := []blk{
		{1, 16, 1, 1, 3}, {6, 24, 2, 2, 3}, {6, 40, 2, 2, 5},
		{6, 80, 3, 2, 3}, {6, 112, 3, 1, 5}, {6, 192, 4, 2, 5}, {6, 320, 1, 1, 3},
	}
	for _, bk := range cfg {
		c := scale(bk.c, widthMul)
		n := int(float64(bk.n)*depthMul + 0.5)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			stride := 1
			if i == 0 {
				stride = bk.s
			}
			b.conv(1, 1, c*bk.t)
			b.dwconv(bk.k, stride)
			b.conv(1, 1, c)
			if stride == 1 {
				b.eltwise()
			}
		}
	}
	b.conv(1, 1, scale(1280, widthMul))
	b.gap()
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}

// squeezenet builds the fire-module stack; headK/headC distinguish the
// 1.0 (7×7 stem) and 1.1 (3×3 stem) variants.
func squeezenet(name string, headK, headC int) *Model {
	b := newBuilder(name, "SqueezeNet", 224, 224, 3)
	b.conv(headK, 2, headC)
	b.pool(3, 2)
	fire := func(squeeze, expand int) {
		b.conv(1, 1, squeeze)
		b.conv(1, 1, expand)   // expand 1x1 branch (reads squeeze output)
		b.setChannels(squeeze) // rewind: 3x3 branch also reads squeeze output
		b.conv(3, 1, expand)   // expand 3x3 branch
		b.eltwise()            // concat
		b.setChannels(2 * expand)
	}
	fire(16, 64)
	fire(16, 64)
	b.pool(3, 2)
	fire(32, 128)
	fire(32, 128)
	b.pool(3, 2)
	fire(48, 192)
	fire(48, 192)
	fire(64, 256)
	fire(64, 256)
	b.conv(1, 1, 1000)
	b.gap()
	b.softmax(1000)
	return b.build()
}

// squeezenext builds the SqueezeNext-23 variant with split 1×3/3×1
// convolutions.
func squeezenext() *Model {
	b := newBuilder("SqueezeNext-23", "SqueezeNet", 224, 224, 3)
	b.conv(7, 2, 64)
	b.pool(3, 2)
	stage := func(c, n, stride int) {
		for i := 0; i < n; i++ {
			s := 1
			if i == 0 {
				s = stride
			}
			b.conv(1, s, c/2)
			b.conv(1, 1, c/4)
			b.conv(3, 1, c/2) // stands in for the 1x3+3x1 pair
			b.conv(1, 1, c)
			b.eltwise()
		}
	}
	stage(32, 6, 1)
	stage(64, 6, 2)
	stage(128, 8, 2)
	stage(256, 1, 2)
	b.conv(1, 1, 128)
	b.gap()
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}

// densenet builds a densely connected network with the given growth rate
// and per-block layer counts.
func densenet(name string, input, growth int, blocks [4]int) *Model {
	b := newBuilder(name, "DenseNet", input, input, 3)
	c := 2 * growth
	b.conv(7, 2, c)
	b.pool(3, 2)
	for stage, n := range blocks {
		for i := 0; i < n; i++ {
			b.conv(1, 1, 4*growth)
			b.conv(3, 1, growth)
			b.eltwise() // concat onto the running feature map
			c += growth
			b.setChannels(c)
		}
		if stage < len(blocks)-1 {
			c = c / 2
			b.conv(1, 1, c) // transition
			b.pool(2, 2)
		}
	}
	b.gap()
	b.dense(1000)
	b.softmax(1000)
	return b.build()
}
