package dpu

import (
	"errors"
	"time"

	"repro/internal/fabric"
)

// QuerySource supplies inference inputs. Next returns the source image
// dimensions of the next query; the engine models the CPU-side resize
// from that size to the model's input size.
type QuerySource interface {
	Next() (width, height int)
}

// EngineConfig describes a DPU instance and its host-board hooks.
type EngineConfig struct {
	// ClockHz is the MAC-array clock; zero means 300 MHz (the ZCU102
	// deployment's fabric clock).
	ClockHz float64
	// MACsPerCycle is the array's peak multiply-accumulates per cycle;
	// zero means 2048 (a B4096-class DPU: 4096 INT8 ops/cycle).
	MACsPerCycle float64
	// ConvEfficiency is the achieved fraction of peak on standard
	// convolutions; zero means 0.7.
	ConvEfficiency float64
	// DWConvEfficiency is the achieved fraction on depthwise
	// convolutions, which map poorly to the array; zero means 0.25.
	DWConvEfficiency float64
	// DDRBandwidth is the effective memory bandwidth in bytes/s; zero
	// means 10 GB/s (DDR4-2400 ×64 with realistic efficiency).
	DDRBandwidth float64
	// PeakElements is the PL toggling-element count at full MAC-array
	// utilization; zero means 30000.
	PeakElements float64
	// IdleElements is the deployed-but-idle DPU activity (clock tree,
	// instruction fetch); zero means 800.
	IdleElements float64
	// PreprocSecsPerMPix is the CPU cost of resizing one megapixel of
	// source image; zero means 20 ms/MPix.
	PreprocSecsPerMPix float64
	// Queries supplies inference inputs. Required.
	Queries QuerySource
	// SetCPUFullUtil, SetCPULowUtil, SetDDRUtil push the engine's
	// CPU/memory demand into the host board each tick. All required.
	SetCPUFullUtil func(float64)
	SetCPULowUtil  func(float64)
	SetDDRUtil     func(float64)
}

// segment is one homogeneous phase of a query's execution.
type segment struct {
	dur      time.Duration
	elements float64 // PL toggling elements
	cpuFull  float64 // full-power CPU utilization
	cpuLow   float64 // low-power CPU utilization
	ddr      float64 // DDR bandwidth utilization
}

// Engine is a deployed DPU accelerator. It implements fabric.Circuit;
// its CPU and DDR demands are pushed through the board hooks.
type Engine struct {
	cfg EngineConfig

	model   *Model
	program *Program // non-nil when executing compiled microcode
	running bool

	segments []segment
	segIdx   int
	segDone  time.Duration

	inferences uint64

	// per-tick outputs
	activity float64
}

// NewEngine validates cfg and returns an idle engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.ClockHz == 0 {
		cfg.ClockHz = 300e6
	}
	if cfg.MACsPerCycle == 0 {
		cfg.MACsPerCycle = 2048
	}
	if cfg.ConvEfficiency == 0 {
		cfg.ConvEfficiency = 0.7
	}
	if cfg.DWConvEfficiency == 0 {
		cfg.DWConvEfficiency = 0.25
	}
	if cfg.DDRBandwidth == 0 {
		cfg.DDRBandwidth = 10e9
	}
	if cfg.PeakElements == 0 {
		cfg.PeakElements = 30000
	}
	if cfg.IdleElements == 0 {
		cfg.IdleElements = 800
	}
	if cfg.PreprocSecsPerMPix == 0 {
		cfg.PreprocSecsPerMPix = 0.020
	}
	if cfg.ClockHz < 0 || cfg.MACsPerCycle < 0 || cfg.ConvEfficiency <= 0 ||
		cfg.ConvEfficiency > 1 || cfg.DWConvEfficiency <= 0 || cfg.DWConvEfficiency > 1 ||
		cfg.DDRBandwidth < 0 || cfg.PeakElements < 0 || cfg.IdleElements < 0 ||
		cfg.PreprocSecsPerMPix < 0 {
		return nil, errors.New("dpu: negative or out-of-range engine parameter")
	}
	if cfg.Queries == nil {
		return nil, errors.New("dpu: engine needs a query source")
	}
	if cfg.SetCPUFullUtil == nil || cfg.SetCPULowUtil == nil || cfg.SetDDRUtil == nil {
		return nil, errors.New("dpu: engine needs all three board hooks")
	}
	return &Engine{cfg: cfg}, nil
}

// LoadModel deploys a model; inference starts on the next Step. The
// paper's victim runs each model in series: Load, run for 5 s, Load the
// next.
func (e *Engine) LoadModel(m *Model) error {
	if m == nil {
		return errors.New("dpu: nil model")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	e.model = m
	e.program = nil
	e.running = true
	e.segments = nil
	e.segIdx = 0
	e.segDone = 0
	return nil
}

// LoadProgram deploys a compiled instruction stream instead of the
// layer-granular schedule: LOAD/SAVE phases become pure memory traffic
// and CONV bursts pure compute, the finer-grained alternation a real
// DPU exhibits between its double-buffered tiles.
func (e *Engine) LoadProgram(p *Program) error {
	if p == nil {
		return errors.New("dpu: nil program")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	e.model = p.Model
	e.program = p
	e.running = true
	e.segments = nil
	e.segIdx = 0
	e.segDone = 0
	return nil
}

// Stop halts inference; the DPU stays deployed (idle activity only).
func (e *Engine) Stop() { e.running = false }

// Model returns the loaded model, or nil.
func (e *Engine) Model() *Model { return e.model }

// Inferences returns the number of completed queries.
func (e *Engine) Inferences() uint64 { return e.inferences }

// scheduleQuery builds the segment list for one query against the
// loaded model.
func (e *Engine) scheduleQuery() {
	m := e.model
	segs := e.segments[:0]

	// Phase 1: CPU preprocessing — fetch and resize the source image.
	w, h := e.cfg.Queries.Next()
	mpix := float64(w*h) / 1e6
	pre := time.Duration(mpix * e.cfg.PreprocSecsPerMPix * float64(time.Second))
	if pre < 100*time.Microsecond {
		pre = 100 * time.Microsecond
	}
	segs = append(segs, segment{
		dur: pre, elements: e.cfg.IdleElements,
		cpuFull: 0.85, cpuLow: 0.30, ddr: 0.15,
	})

	// Phase 2: the compute schedule — instruction stream when a program
	// is loaded, per-layer roofline otherwise.
	cycleRate := e.cfg.MACsPerCycle * e.cfg.ClockHz
	if e.program != nil {
		segs = e.scheduleProgram(segs, cycleRate)
		segs = append(segs, segment{
			dur: time.Millisecond, elements: e.cfg.IdleElements,
			cpuFull: 0.30, cpuLow: 0.15, ddr: 0.05,
		})
		e.segments = segs
		e.segIdx = 0
		e.segDone = 0
		return
	}
	for _, l := range m.Layers {
		eff := e.cfg.ConvEfficiency
		switch l.Type {
		case DWConv:
			eff = e.cfg.DWConvEfficiency
		case Pool, EltWise:
			eff = e.cfg.ConvEfficiency // no MACs anyway; memory dominated
		case Softmax:
			// Classifier head runs on the CPU after output transfer.
			segs = append(segs, segment{
				dur: 500 * time.Microsecond, elements: e.cfg.IdleElements,
				cpuFull: 0.6, cpuLow: 0.2, ddr: 0.05,
			})
			continue
		}
		tc := float64(l.MACs) / (cycleRate * eff)
		tm := float64(l.WeightBytes+l.ActivationBytes) / e.cfg.DDRBandwidth
		dur := tc
		if tm > dur {
			dur = tm
		}
		if dur <= 0 {
			continue
		}
		computeUtil := tc / dur
		memUtil := tm / dur
		segs = append(segs, segment{
			dur:      time.Duration(dur * float64(time.Second)),
			elements: e.cfg.IdleElements + e.cfg.PeakElements*computeUtil,
			cpuFull:  0.10, // runtime thread polling the DPU
			// The low-power domain (PMU) tracks platform-management
			// events, which follow the memory traffic — a weak echo of
			// the DDR signature, which is why the paper's LP-CPU sensor
			// fingerprints at 55.7% rather than either extreme.
			cpuLow: 0.10 + 0.25*memUtil,
			ddr:    memUtil,
		})
	}

	// Phase 3: scheduling gap before the next query.
	segs = append(segs, segment{
		dur: time.Millisecond, elements: e.cfg.IdleElements,
		cpuFull: 0.30, cpuLow: 0.15, ddr: 0.05,
	})

	e.segments = segs
	e.segIdx = 0
	e.segDone = 0
}

// scheduleProgram lowers the instruction stream into segments.
func (e *Engine) scheduleProgram(segs []segment, cycleRate float64) []segment {
	for _, in := range e.program.Instrs {
		switch in.Op {
		case OpLoad, OpSave, OpPool:
			dur := float64(in.Bytes) / e.cfg.DDRBandwidth
			if dur <= 0 {
				continue
			}
			segs = append(segs, segment{
				dur:      time.Duration(dur * float64(time.Second)),
				elements: e.cfg.IdleElements,
				cpuFull:  0.08, cpuLow: 0.15, ddr: 0.95,
			})
		case OpConv:
			eff := e.cfg.ConvEfficiency
			if in.DWConv {
				eff = e.cfg.DWConvEfficiency
			}
			dur := float64(in.MACs) / (cycleRate * eff)
			if dur <= 0 {
				continue
			}
			segs = append(segs, segment{
				dur:      time.Duration(dur * float64(time.Second)),
				elements: e.cfg.IdleElements + e.cfg.PeakElements,
				cpuFull:  0.10, cpuLow: 0.12, ddr: 0.10,
			})
		case OpEnd:
			// Interrupt + CPU softmax, as in the layer schedule.
			segs = append(segs, segment{
				dur: 500 * time.Microsecond, elements: e.cfg.IdleElements,
				cpuFull: 0.6, cpuLow: 0.2, ddr: 0.05,
			})
		}
	}
	return segs
}

// CircuitName implements fabric.Circuit.
func (e *Engine) CircuitName() string { return "dpu-b4096" }

// Utilization implements fabric.Circuit: a B4096-class DPU core.
func (e *Engine) Utilization() fabric.Resources {
	return fabric.Resources{LUTs: 52000, FFs: 98000, DSPs: 710, BRAMKb: 9000}
}

// Step implements fabric.Circuit: walk the segment schedule through dt,
// time-averaging the PL activity and pushing the averaged CPU/DDR
// demands into the board.
func (e *Engine) Step(now, dt time.Duration) {
	if !e.running || e.model == nil {
		e.activity = e.cfg.IdleElements
		e.cfg.SetCPUFullUtil(0)
		e.cfg.SetCPULowUtil(0)
		e.cfg.SetDDRUtil(0)
		return
	}
	var elemW, cpuW, lowW, ddrW float64 // time-weighted accumulators
	remaining := dt
	for remaining > 0 {
		if e.segIdx >= len(e.segments) {
			if e.segments != nil {
				e.inferences++
			}
			e.scheduleQuery()
		}
		seg := &e.segments[e.segIdx]
		left := seg.dur - e.segDone
		use := left
		if use > remaining {
			use = remaining
		}
		w := use.Seconds()
		elemW += seg.elements * w
		cpuW += seg.cpuFull * w
		lowW += seg.cpuLow * w
		ddrW += seg.ddr * w
		e.segDone += use
		remaining -= use
		if e.segDone >= seg.dur {
			e.segIdx++
			e.segDone = 0
		}
	}
	sec := dt.Seconds()
	e.activity = elemW / sec
	e.cfg.SetCPUFullUtil(cpuW / sec)
	e.cfg.SetCPULowUtil(lowW / sec)
	e.cfg.SetDDRUtil(ddrW / sec)
}

// ActiveElements implements fabric.Circuit.
func (e *Engine) ActiveElements() float64 { return e.activity }

// QueryPeriod estimates one query's wall time for the loaded model
// (preprocessing of a nominal 0.19 MPix source + layer schedule + gap).
// Diagnostic only; the live schedule uses the actual query sizes.
func (e *Engine) QueryPeriod() (time.Duration, error) {
	if e.model == nil {
		return 0, errors.New("dpu: no model loaded")
	}
	cycleRate := e.cfg.MACsPerCycle * e.cfg.ClockHz
	total := time.Duration(0.19*e.cfg.PreprocSecsPerMPix*float64(time.Second)) + time.Millisecond
	for _, l := range e.model.Layers {
		eff := e.cfg.ConvEfficiency
		if l.Type == DWConv {
			eff = e.cfg.DWConvEfficiency
		}
		if l.Type == Softmax {
			total += 500 * time.Microsecond
			continue
		}
		tc := float64(l.MACs) / (cycleRate * eff)
		tm := float64(l.WeightBytes+l.ActivationBytes) / e.cfg.DDRBandwidth
		if tm > tc {
			tc = tm
		}
		total += time.Duration(tc * float64(time.Second))
	}
	return total, nil
}
