package dpu

import (
	"strings"
	"testing"
	"time"
)

func TestProfileValidation(t *testing.T) {
	if _, err := ProfileModel(nil, EngineConfig{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := ProfileModel(&Model{}, EngineConfig{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestProfileVGGIsComputeBoundOnConvsMemoryBoundOnFC(t *testing.T) {
	m, _ := ZooModel("VGG-19")
	p, err := ProfileModel(m, EngineConfig{})
	if err != nil {
		t.Fatalf("ProfileModel: %v", err)
	}
	if p.Model != "VGG-19" {
		t.Fatalf("Model = %s", p.Model)
	}
	var sawComputeConv, sawMemoryDense, sawCPU bool
	for _, l := range p.Layers {
		switch {
		case l.Type == Conv && l.Bound == ComputeBound:
			sawComputeConv = true
		case l.Type == Dense && l.Bound == MemoryBound:
			sawMemoryDense = true
		case l.Bound == CPUBound:
			sawCPU = true
		}
	}
	if !sawComputeConv {
		t.Error("no compute-bound conv in VGG-19")
	}
	if !sawMemoryDense {
		t.Error("VGG-19's giant fc layers should be memory-bound")
	}
	if !sawCPU {
		t.Error("softmax should be CPU-bound")
	}
	if p.Total < 20*time.Millisecond || p.Total > 200*time.Millisecond {
		t.Fatalf("VGG-19 inference = %v, want tens of ms", p.Total)
	}
	// Accounting: compute + memory + softmax = total.
	if p.ComputeTime+p.MemoryTime > p.Total {
		t.Fatal("bound times exceed total")
	}
}

func TestProfileMobileNetDWConvsAreSlowerThanEfficiencySuggests(t *testing.T) {
	m, _ := ZooModel("MobileNet-V1")
	p, err := ProfileModel(m, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Total > 20*time.Millisecond {
		t.Fatalf("MobileNet inference = %v, implausibly slow", p.Total)
	}
}

func TestProfileTopLayers(t *testing.T) {
	m, _ := ZooModel("ResNet-50")
	p, err := ProfileModel(m, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	top := p.TopLayers(5)
	if len(top) != 5 {
		t.Fatalf("TopLayers = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Duration > top[i-1].Duration {
			t.Fatal("TopLayers not sorted")
		}
	}
	// Asking for more than exist returns all.
	if got := p.TopLayers(10000); len(got) != len(p.Layers) {
		t.Fatalf("TopLayers overflow = %d", len(got))
	}
}

func TestProfileRender(t *testing.T) {
	m, _ := ZooModel("SqueezeNet-1.1")
	p, err := ProfileModel(m, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.Render(&sb, 3); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "SqueezeNet-1.1") || !strings.Contains(out, "per inference") {
		t.Fatalf("render output:\n%s", out)
	}
	if strings.Count(out, "\n") != 4 { // header + 3 layers
		t.Fatalf("render lines:\n%s", out)
	}
}

func TestProfileTotalsMatchQueryPeriodOrdering(t *testing.T) {
	// Profiles must preserve the ordering the engine's QueryPeriod sees.
	prof := func(name string) time.Duration {
		m, _ := ZooModel(name)
		p, err := ProfileModel(m, EngineConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return p.Total
	}
	if prof("VGG-19") <= prof("ResNet-50") {
		t.Fatal("VGG-19 should profile slower than ResNet-50")
	}
	if prof("ResNet-50") <= prof("MobileNet-V1") {
		t.Fatal("ResNet-50 should profile slower than MobileNet-V1")
	}
}
