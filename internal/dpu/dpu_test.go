package dpu

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/imagenet"
)

func TestZooHas39ModelsIn7Families(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 39 {
		t.Fatalf("zoo size = %d, want 39", len(zoo))
	}
	fams := ZooFamilies()
	if len(fams) != 7 {
		t.Fatalf("families = %v (%d), want 7", fams, len(fams))
	}
	names := map[string]bool{}
	for _, m := range zoo {
		if names[m.Name] {
			t.Errorf("duplicate model name %q", m.Name)
		}
		names[m.Name] = true
		if err := m.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", m.Name, err)
		}
	}
}

func TestZooWorkloadsAreRealistic(t *testing.T) {
	// Published ballparks (MACs per inference): the zoo should land in
	// the right order of magnitude and preserve the famous orderings.
	get := func(name string) *Model {
		t.Helper()
		m, err := ZooModel(name)
		if err != nil {
			t.Fatalf("ZooModel(%s): %v", name, err)
		}
		return m
	}
	vgg19 := get("VGG-19")
	resnet50 := get("ResNet-50")
	mobilenet := get("MobileNet-V1")
	squeeze := get("SqueezeNet-1.1")

	// VGG-19 ~19.6 GMACs; accept 10-30 G.
	if g := float64(vgg19.TotalMACs()) / 1e9; g < 10 || g > 30 {
		t.Errorf("VGG-19 MACs = %.1f G, want 10-30 G", g)
	}
	// ResNet-50 ~4.1 GMACs; accept 2-8 G.
	if g := float64(resnet50.TotalMACs()) / 1e9; g < 2 || g > 8 {
		t.Errorf("ResNet-50 MACs = %.1f G, want 2-8 G", g)
	}
	// MobileNet-V1 ~0.57 GMACs; accept 0.3-1.2 G.
	if g := float64(mobilenet.TotalMACs()) / 1e9; g < 0.3 || g > 1.2 {
		t.Errorf("MobileNet-V1 MACs = %.2f G, want 0.3-1.2 G", g)
	}
	// Orderings.
	if vgg19.TotalMACs() <= resnet50.TotalMACs() {
		t.Error("VGG-19 should out-compute ResNet-50")
	}
	if resnet50.TotalMACs() <= mobilenet.TotalMACs() {
		t.Error("ResNet-50 should out-compute MobileNet-V1")
	}
	// VGG-19 ~144 M params, SqueezeNet ~1.2 M: a >50x parameter gap.
	if vgg19.ParamBytes() < 50*squeeze.ParamBytes() {
		t.Errorf("VGG-19/SqueezeNet param ratio = %.1f, want > 50",
			float64(vgg19.ParamBytes())/float64(squeeze.ParamBytes()))
	}
}

func TestZooModelLookupError(t *testing.T) {
	if _, err := ZooModel("NoSuchNet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestFig3ModelsExist(t *testing.T) {
	names := Fig3Models()
	if len(names) != 6 {
		t.Fatalf("Fig3Models = %d, want 6", len(names))
	}
	for _, n := range names {
		if _, err := ZooModel(n); err != nil {
			t.Errorf("Fig. 3 model %s missing from zoo: %v", n, err)
		}
	}
}

func TestModelValidate(t *testing.T) {
	bad := []Model{
		{},
		{Name: "x", Family: "f"}, // no input
		{Name: "x", Family: "f", InputH: 224, InputW: 224}, // no layers
		{Name: "x", Family: "f", InputH: 224, InputW: 224, // negative MACs
			Layers: []Layer{{Name: "l", Type: Conv, MACs: -1}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

// testHooks collects the engine's board demands.
type testHooks struct {
	cpuFull, cpuLow, ddr float64
}

func (h *testHooks) config(q QuerySource) EngineConfig {
	return EngineConfig{
		Queries:        q,
		SetCPUFullUtil: func(v float64) { h.cpuFull = v },
		SetCPULowUtil:  func(v float64) { h.cpuLow = v },
		SetDDRUtil:     func(v float64) { h.ddr = v },
	}
}

func TestNewEngineValidation(t *testing.T) {
	h := &testHooks{}
	good := h.config(imagenet.Fixed{Width: 500, Height: 375})
	cases := []func(EngineConfig) EngineConfig{
		func(c EngineConfig) EngineConfig { c.Queries = nil; return c },
		func(c EngineConfig) EngineConfig { c.SetCPUFullUtil = nil; return c },
		func(c EngineConfig) EngineConfig { c.SetCPULowUtil = nil; return c },
		func(c EngineConfig) EngineConfig { c.SetDDRUtil = nil; return c },
		func(c EngineConfig) EngineConfig { c.ConvEfficiency = 2; return c },
		func(c EngineConfig) EngineConfig { c.DWConvEfficiency = -0.5; return c },
		func(c EngineConfig) EngineConfig { c.PeakElements = -1; return c },
	}
	for i, mutate := range cases {
		if _, err := NewEngine(mutate(good)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewEngine(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestEngineIdleWithoutModel(t *testing.T) {
	h := &testHooks{}
	e, err := NewEngine(h.config(imagenet.Fixed{Width: 500, Height: 375}))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.Step(0, time.Millisecond)
	if e.ActiveElements() != 800 { // default idle
		t.Fatalf("idle activity = %v, want 800", e.ActiveElements())
	}
	if h.cpuFull != 0 || h.ddr != 0 {
		t.Fatal("idle engine pushed non-zero demand")
	}
	if e.Model() != nil {
		t.Fatal("Model() non-nil before load")
	}
}

func TestLoadModelValidation(t *testing.T) {
	h := &testHooks{}
	e, _ := NewEngine(h.config(imagenet.Fixed{Width: 500, Height: 375}))
	if err := e.LoadModel(nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if err := e.LoadModel(&Model{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestEngineRunsInference(t *testing.T) {
	h := &testHooks{}
	e, _ := NewEngine(h.config(imagenet.Fixed{Width: 500, Height: 375}))
	m, err := ZooModel("MobileNet-V1")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(m); err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	// MobileNet is fast (few ms per query); 500 ms should complete many.
	for now := time.Duration(0); now < 500*time.Millisecond; now += time.Millisecond {
		e.Step(now, time.Millisecond)
	}
	if e.Inferences() < 10 {
		t.Fatalf("Inferences = %d, want >= 10", e.Inferences())
	}
}

func TestEngineActivityAboveIdleWhileRunning(t *testing.T) {
	h := &testHooks{}
	e, _ := NewEngine(h.config(imagenet.Fixed{Width: 500, Height: 375}))
	m, _ := ZooModel("VGG-19")
	if err := e.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for now := time.Duration(0); now < 300*time.Millisecond; now += time.Millisecond {
		e.Step(now, time.Millisecond)
		sum += e.ActiveElements()
		n++
	}
	mean := sum / float64(n)
	if mean < 5000 {
		t.Fatalf("mean VGG-19 activity = %v, want well above idle", mean)
	}
}

func TestEngineStop(t *testing.T) {
	h := &testHooks{}
	e, _ := NewEngine(h.config(imagenet.Fixed{Width: 500, Height: 375}))
	m, _ := ZooModel("SqueezeNet-1.1")
	if err := e.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	e.Step(0, time.Millisecond)
	e.Stop()
	e.Step(0, time.Millisecond)
	if e.ActiveElements() != 800 {
		t.Fatalf("stopped activity = %v, want idle", e.ActiveElements())
	}
}

func TestQueryPeriodOrdering(t *testing.T) {
	h := &testHooks{}
	e, _ := NewEngine(h.config(imagenet.Fixed{Width: 500, Height: 375}))
	if _, err := e.QueryPeriod(); err == nil {
		t.Fatal("QueryPeriod without model accepted")
	}
	period := func(name string) time.Duration {
		t.Helper()
		m, err := ZooModel(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.LoadModel(m); err != nil {
			t.Fatal(err)
		}
		p, err := e.QueryPeriod()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	small := period("MobileNet-V1")
	big := period("VGG-19")
	if big <= small {
		t.Fatalf("periods: VGG-19 %v <= MobileNet %v", big, small)
	}
	if big < 10*time.Millisecond {
		t.Fatalf("VGG-19 period = %v, implausibly fast", big)
	}
	if small > 50*time.Millisecond {
		t.Fatalf("MobileNet period = %v, implausibly slow", small)
	}
}

func TestEnginePushesDemandsDuringPreprocess(t *testing.T) {
	h := &testHooks{}
	// Enormous source image: preprocessing dominates the first ticks.
	e, _ := NewEngine(h.config(imagenet.Fixed{Width: 1600, Height: 1600}))
	m, _ := ZooModel("ResNet-50")
	if err := e.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	e.Step(0, time.Millisecond)
	if h.cpuFull < 0.5 {
		t.Fatalf("preprocess CPU util = %v, want high", h.cpuFull)
	}
	if e.ActiveElements() > 2000 {
		t.Fatalf("PL busy during CPU preprocess: %v elements", e.ActiveElements())
	}
}

// Property: every zoo model completes queries and keeps utilizations in
// [0,1].
func TestEngineUtilizationBoundsProperty(t *testing.T) {
	zoo := Zoo()
	f := func(pick uint8) bool {
		m := zoo[int(pick)%len(zoo)]
		h := &testHooks{}
		e, err := NewEngine(h.config(imagenet.Fixed{Width: 500, Height: 375}))
		if err != nil {
			return false
		}
		if err := e.LoadModel(m); err != nil {
			return false
		}
		for now := time.Duration(0); now < 50*time.Millisecond; now += time.Millisecond {
			e.Step(now, time.Millisecond)
			if h.cpuFull < 0 || h.cpuFull > 1 || h.cpuLow < 0 || h.cpuLow > 1 ||
				h.ddr < 0 || h.ddr > 1.0001 {
				return false
			}
			if e.ActiveElements() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 39}); err != nil {
		t.Fatal(err)
	}
}
