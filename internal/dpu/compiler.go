package dpu

import (
	"errors"
	"fmt"
)

// The real DPU executes models as a stream of microcode instructions
// produced by the Vitis AI compiler: weight/activation loads from DDR
// into on-chip buffers, convolution bursts on the MAC array, and
// feature-map saves. This file implements a simplified version of that
// compiler — layers are tiled to the engine's on-chip buffer sizes and
// lowered to an instruction stream — plus the program statistics the
// side-channel analysis cares about (how much of a model's time is
// spent moving data versus computing).
//
// The engine's default schedule (engine.go) uses the per-layer roofline
// directly; programs offer a finer-grained alternative via
// Engine.LoadProgram, where LOAD/SAVE instructions are memory-only
// phases and CONV bursts are compute-bound — the shape a DDR-side
// observer sees between compute plateaus.

// Opcode classifies a DPU instruction.
type Opcode string

// The simplified instruction set.
const (
	// OpLoad moves weights or activations DDR -> on-chip buffer.
	OpLoad Opcode = "LOAD"
	// OpConv runs a MAC-array burst over the loaded tile.
	OpConv Opcode = "CONV"
	// OpPool runs a pooling/elementwise pass (memory dominated).
	OpPool Opcode = "POOL"
	// OpSave writes a tile's output feature map back to DDR.
	OpSave Opcode = "SAVE"
	// OpEnd terminates the program (interrupt to the runtime).
	OpEnd Opcode = "END"
)

// Instr is one DPU microcode instruction.
type Instr struct {
	// Op is the instruction class.
	Op Opcode
	// Bytes moved for LOAD/POOL/SAVE instructions.
	Bytes int64
	// MACs executed for CONV instructions.
	MACs int64
	// Layer is the source layer's name (diagnostics).
	Layer string
	// DWConv marks a depthwise burst (lower array efficiency).
	DWConv bool
}

// CompilerConfig bounds the tiling.
type CompilerConfig struct {
	// WeightBufBytes is the on-chip weight buffer; zero means 1 MiB.
	WeightBufBytes int64
	// ActBufBytes is the on-chip activation buffer; zero means 512 KiB.
	ActBufBytes int64
}

func (c *CompilerConfig) fillDefaults() {
	if c.WeightBufBytes == 0 {
		c.WeightBufBytes = 1 << 20
	}
	if c.ActBufBytes == 0 {
		c.ActBufBytes = 512 << 10
	}
}

// Program is a compiled model.
type Program struct {
	// Model the program was compiled from.
	Model *Model
	// Instrs in execution order, ending with OpEnd.
	Instrs []Instr
}

// Compile lowers a model into a DPU instruction stream, tiling each
// layer so no single LOAD exceeds the on-chip buffers.
func Compile(m *Model, cfg CompilerConfig) (*Program, error) {
	if m == nil {
		return nil, errors.New("dpu: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if cfg.WeightBufBytes < 1024 || cfg.ActBufBytes < 1024 {
		return nil, errors.New("dpu: on-chip buffers implausibly small")
	}
	p := &Program{Model: m}
	for _, l := range m.Layers {
		switch l.Type {
		case Conv, DWConv, Dense:
			tiles := tilesFor(l, cfg)
			wPerTile := ceilDiv(l.WeightBytes, int64(tiles))
			aPerTile := ceilDiv(l.ActivationBytes, int64(tiles))
			macsPerTile := ceilDiv(l.MACs, int64(tiles))
			for t := 0; t < tiles; t++ {
				p.Instrs = append(p.Instrs,
					Instr{Op: OpLoad, Bytes: wPerTile + aPerTile/2, Layer: l.Name},
					Instr{Op: OpConv, MACs: macsPerTile, Layer: l.Name, DWConv: l.Type == DWConv},
					Instr{Op: OpSave, Bytes: aPerTile / 2, Layer: l.Name},
				)
			}
		case Pool, EltWise:
			p.Instrs = append(p.Instrs, Instr{Op: OpPool, Bytes: l.ActivationBytes, Layer: l.Name})
		case Softmax:
			// Runs on the CPU after the final SAVE; no DPU instruction.
		default:
			return nil, fmt.Errorf("dpu: layer %s has unknown type %q", l.Name, l.Type)
		}
	}
	p.Instrs = append(p.Instrs, Instr{Op: OpEnd})
	return p, nil
}

// tilesFor returns how many tiles a layer needs under the buffer caps.
func tilesFor(l Layer, cfg CompilerConfig) int {
	tiles := 1
	if l.WeightBytes > cfg.WeightBufBytes {
		tiles = int(ceilDiv(l.WeightBytes, cfg.WeightBufBytes))
	}
	if a := int(ceilDiv(l.ActivationBytes, cfg.ActBufBytes)); a > tiles {
		tiles = a
	}
	return tiles
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// Stats summarizes a program.
type Stats struct {
	// Instructions per opcode.
	Counts map[Opcode]int
	// TotalMACs across CONV instructions.
	TotalMACs int64
	// TotalBytes across LOAD/POOL/SAVE instructions.
	TotalBytes int64
}

// Stats computes the program summary.
func (p *Program) Stats() Stats {
	s := Stats{Counts: make(map[Opcode]int)}
	for _, in := range p.Instrs {
		s.Counts[in.Op]++
		s.TotalMACs += in.MACs
		s.TotalBytes += in.Bytes
	}
	return s
}

// Validate checks structural invariants: conservation of the model's
// MACs and a terminating END.
func (p *Program) Validate() error {
	if p.Model == nil || len(p.Instrs) == 0 {
		return errors.New("dpu: empty program")
	}
	if p.Instrs[len(p.Instrs)-1].Op != OpEnd {
		return errors.New("dpu: program does not end with END")
	}
	s := p.Stats()
	want := p.Model.TotalMACs()
	// Tiling rounds each layer's MACs up; allow one tile of slack per
	// CONV instruction.
	if s.TotalMACs < want {
		return fmt.Errorf("dpu: program loses MACs: %d < %d", s.TotalMACs, want)
	}
	if s.TotalMACs > want+int64(s.Counts[OpConv]) {
		return fmt.Errorf("dpu: program invents MACs: %d > %d (+%d slack)",
			s.TotalMACs, want, s.Counts[OpConv])
	}
	return nil
}
