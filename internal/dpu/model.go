// Package dpu models the Xilinx Deep Learning Processor Unit (DPU), the
// encrypted commercial accelerator the paper fingerprints in Sec. IV-B.
//
// The real DPU's HDL is encrypted (IEEE-1735), but its side-channel
// behaviour is governed by quantities an architecture simulator can
// reproduce: per-layer multiply-accumulate counts, weight and activation
// traffic, and the roofline imposed by the engine's MAC array and the
// DDR bandwidth. The package therefore contains
//
//   - a layer-level workload description (Layer, Model),
//   - a zoo of 39 image-recognition architectures across 7 families
//     mirroring the Vitis AI model suite (zoo.go), and
//   - an execution engine (engine.go) that schedules a model's layers on
//     a B4096-class MAC array and emits time-varying activity on the
//     FPGA, DDR, and CPU rails of the host board.
package dpu

import (
	"errors"
	"fmt"
)

// LayerType classifies a workload layer.
type LayerType string

// Layer types the zoo uses.
const (
	Conv    LayerType = "conv"    // standard convolution
	DWConv  LayerType = "dwconv"  // depthwise convolution
	Dense   LayerType = "dense"   // fully connected
	Pool    LayerType = "pool"    // max/avg pooling
	EltWise LayerType = "eltwise" // residual adds, concats
	Softmax LayerType = "softmax" // classifier head (runs on CPU)
)

// Layer is one schedulable unit of a model.
type Layer struct {
	// Name identifies the layer, e.g. "conv3_2".
	Name string
	// Type classifies the layer.
	Type LayerType
	// MACs is the number of multiply-accumulate operations.
	MACs int64
	// WeightBytes is the parameter traffic (INT8 weights, as deployed
	// through the Vitis AI quantizer).
	WeightBytes int64
	// ActivationBytes is the feature-map traffic (read + write).
	ActivationBytes int64
}

// Model is a deployable DNN workload.
type Model struct {
	// Name of the architecture, e.g. "ResNet-50".
	Name string
	// Family groups related architectures, e.g. "ResNet".
	Family string
	// InputH, InputW are the network input dimensions; queries are
	// resized to them on the CPU before inference (the preprocessing
	// phase visible on the full-power CPU rail).
	InputH, InputW int
	// Layers in execution order.
	Layers []Layer
}

// Validate checks structural sanity of the model.
func (m *Model) Validate() error {
	if m.Name == "" || m.Family == "" {
		return errors.New("dpu: model needs a name and family")
	}
	if m.InputH <= 0 || m.InputW <= 0 {
		return fmt.Errorf("dpu: model %s: bad input size %dx%d", m.Name, m.InputH, m.InputW)
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("dpu: model %s has no layers", m.Name)
	}
	for i, l := range m.Layers {
		if l.MACs < 0 || l.WeightBytes < 0 || l.ActivationBytes < 0 {
			return fmt.Errorf("dpu: model %s layer %d (%s): negative workload", m.Name, i, l.Name)
		}
	}
	return nil
}

// TotalMACs returns the model's total multiply-accumulate count.
func (m *Model) TotalMACs() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.MACs
	}
	return t
}

// ParamBytes returns the model's total parameter size in bytes, the
// "model size" annotated on Fig. 3.
func (m *Model) ParamBytes() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.WeightBytes
	}
	return t
}

// ActivationTraffic returns the total feature-map traffic in bytes.
func (m *Model) ActivationTraffic() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.ActivationBytes
	}
	return t
}

// shape tracks the feature-map dimensions while building a model.
type shape struct{ h, w, c int }

// builder constructs a model layer by layer, computing MAC counts and
// traffic from convolution arithmetic so the zoo's workloads follow the
// real architectures' proportions.
type builder struct {
	m   *Model
	cur shape
	n   int
}

func newBuilder(name, family string, inputH, inputW, inputC int) *builder {
	return &builder{
		m:   &Model{Name: name, Family: family, InputH: inputH, InputW: inputW},
		cur: shape{h: inputH, w: inputW, c: inputC},
	}
}

func outDim(in, k, stride int) int {
	// SAME padding as used throughout the supported nets.
	return (in + stride - 1) / stride
}

func (b *builder) add(l Layer) {
	b.n++
	if l.Name == "" {
		l.Name = fmt.Sprintf("%s_%d", l.Type, b.n)
	}
	b.m.Layers = append(b.m.Layers, l)
}

// conv appends a k×k convolution with the given stride and output
// channels.
func (b *builder) conv(k, stride, outC int) {
	oh, ow := outDim(b.cur.h, k, stride), outDim(b.cur.w, k, stride)
	macs := int64(k) * int64(k) * int64(b.cur.c) * int64(outC) * int64(oh) * int64(ow)
	weights := int64(k)*int64(k)*int64(b.cur.c)*int64(outC) + int64(outC) // + bias
	acts := int64(b.cur.h)*int64(b.cur.w)*int64(b.cur.c) + int64(oh)*int64(ow)*int64(outC)
	b.add(Layer{Type: Conv, MACs: macs, WeightBytes: weights, ActivationBytes: acts})
	b.cur = shape{h: oh, w: ow, c: outC}
}

// dwconv appends a depthwise k×k convolution.
func (b *builder) dwconv(k, stride int) {
	oh, ow := outDim(b.cur.h, k, stride), outDim(b.cur.w, k, stride)
	c := b.cur.c
	macs := int64(k) * int64(k) * int64(c) * int64(oh) * int64(ow)
	weights := int64(k)*int64(k)*int64(c) + int64(c)
	acts := int64(b.cur.h)*int64(b.cur.w)*int64(c) + int64(oh)*int64(ow)*int64(c)
	b.add(Layer{Type: DWConv, MACs: macs, WeightBytes: weights, ActivationBytes: acts})
	b.cur = shape{h: oh, w: ow, c: c}
}

// pool appends a k×k pooling layer (no weights, light compute).
func (b *builder) pool(k, stride int) {
	oh, ow := outDim(b.cur.h, k, stride), outDim(b.cur.w, k, stride)
	acts := int64(b.cur.h)*int64(b.cur.w)*int64(b.cur.c) + int64(oh)*int64(ow)*int64(b.cur.c)
	b.add(Layer{Type: Pool, MACs: 0, ActivationBytes: acts})
	b.cur = shape{h: oh, w: ow, c: b.cur.c}
}

// gap appends global average pooling, collapsing spatial dims to 1×1.
func (b *builder) gap() {
	acts := int64(b.cur.h)*int64(b.cur.w)*int64(b.cur.c) + int64(b.cur.c)
	b.add(Layer{Name: "gap", Type: Pool, ActivationBytes: acts})
	b.cur = shape{h: 1, w: 1, c: b.cur.c}
}

// dense appends a fully connected layer.
func (b *builder) dense(out int) {
	in := b.cur.h * b.cur.w * b.cur.c
	macs := int64(in) * int64(out)
	weights := int64(in)*int64(out) + int64(out)
	acts := int64(in) + int64(out)
	b.add(Layer{Type: Dense, MACs: macs, WeightBytes: weights, ActivationBytes: acts})
	b.cur = shape{h: 1, w: 1, c: out}
}

// eltwise appends a residual add or concat over the current map.
func (b *builder) eltwise() {
	acts := 3 * int64(b.cur.h) * int64(b.cur.w) * int64(b.cur.c) // two reads, one write
	b.add(Layer{Type: EltWise, ActivationBytes: acts})
}

// setChannels overrides the channel count (after a concat).
func (b *builder) setChannels(c int) { b.cur.c = c }

// softmax appends the classifier head; on a real deployment it runs on
// the CPU after the DPU output transfer.
func (b *builder) softmax(classes int) {
	b.add(Layer{Name: "softmax", Type: Softmax, ActivationBytes: int64(2 * classes)})
}

func (b *builder) build() *Model { return b.m }
