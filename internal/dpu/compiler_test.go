package dpu

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/imagenet"
)

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(nil, CompilerConfig{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Compile(&Model{}, CompilerConfig{}); err == nil {
		t.Fatal("invalid model accepted")
	}
	m, _ := ZooModel("MobileNet-V1")
	if _, err := Compile(m, CompilerConfig{WeightBufBytes: 10}); err == nil {
		t.Fatal("absurd buffer accepted")
	}
}

func TestCompileEveryZooModel(t *testing.T) {
	for _, m := range Zoo() {
		p, err := Compile(m, CompilerConfig{})
		if err != nil {
			t.Fatalf("%s: Compile: %v", m.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid program: %v", m.Name, err)
		}
		s := p.Stats()
		if s.Counts[OpEnd] != 1 {
			t.Fatalf("%s: END count = %d", m.Name, s.Counts[OpEnd])
		}
		if s.Counts[OpConv] == 0 {
			t.Fatalf("%s: no CONV instructions", m.Name)
		}
	}
}

func TestCompileTilesBigLayers(t *testing.T) {
	// VGG-19's fc weights (~400 MB at fc1) vastly exceed a 1 MiB buffer:
	// the compiler must emit many tiles.
	m, _ := ZooModel("VGG-19")
	p, err := Compile(m, CompilerConfig{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s := p.Stats()
	if s.Counts[OpConv] < 150 {
		t.Fatalf("VGG-19 CONV tiles = %d, want many (fc layers alone need >100)",
			s.Counts[OpConv])
	}
	// No LOAD may exceed the buffer budget by more than the activation
	// half-share.
	for _, in := range p.Instrs {
		if in.Op == OpLoad && in.Bytes > (1<<20)+(512<<10) {
			t.Fatalf("LOAD of %d bytes exceeds on-chip buffers (layer %s)", in.Bytes, in.Layer)
		}
	}
}

func TestCompileSmallBuffersMakeMoreTiles(t *testing.T) {
	m, _ := ZooModel("ResNet-50")
	big, err := Compile(m, CompilerConfig{WeightBufBytes: 4 << 20, ActBufBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Compile(m, CompilerConfig{WeightBufBytes: 64 << 10, ActBufBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats().Counts[OpConv] <= big.Stats().Counts[OpConv] {
		t.Fatalf("smaller buffers should tile more: %d vs %d",
			small.Stats().Counts[OpConv], big.Stats().Counts[OpConv])
	}
}

func TestProgramValidateCatchesCorruption(t *testing.T) {
	m, _ := ZooModel("SqueezeNet-1.1")
	p, err := Compile(m, CompilerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the END.
	bad := &Program{Model: m, Instrs: p.Instrs[:len(p.Instrs)-1]}
	if err := bad.Validate(); err == nil {
		t.Fatal("END-less program accepted")
	}
	// Lose MACs.
	clipped := make([]Instr, len(p.Instrs))
	copy(clipped, p.Instrs)
	for i := range clipped {
		if clipped[i].Op == OpConv {
			clipped[i].MACs = 0
		}
	}
	bad = &Program{Model: m, Instrs: clipped}
	if err := bad.Validate(); err == nil {
		t.Fatal("MAC-less program accepted")
	}
	if err := (&Program{}).Validate(); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestEngineRunsProgram(t *testing.T) {
	h := &testHooks{}
	e, err := NewEngine(h.config(imagenet.Fixed{Width: 500, Height: 375}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadProgram(nil); err == nil {
		t.Fatal("nil program accepted")
	}
	m, _ := ZooModel("VGG-19") // long CONV bursts, MB-scale LOADs
	p, err := Compile(m, CompilerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadProgram(p); err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	if e.Model() != m {
		t.Fatal("program did not set the model")
	}
	sawMemPhase, sawComputePhase := false, false
	for now := time.Duration(0); now < 300*time.Millisecond; now += 100 * time.Microsecond {
		e.Step(now, 100*time.Microsecond)
		if h.ddr > 0.6 && e.ActiveElements() < 5000 {
			sawMemPhase = true
		}
		if e.ActiveElements() > 25000 {
			sawComputePhase = true
		}
	}
	if e.Inferences() == 0 {
		t.Fatal("program engine completed no inference")
	}
	if !sawMemPhase || !sawComputePhase {
		t.Fatalf("program schedule missing phases: mem=%v compute=%v",
			sawMemPhase, sawComputePhase)
	}
}

func TestProgramAndLayerSchedulesComparableDuration(t *testing.T) {
	// The two schedules model the same work; total inference throughput
	// should agree within a small factor.
	run := func(program bool) uint64 {
		h := &testHooks{}
		e, _ := NewEngine(h.config(imagenet.Fixed{Width: 500, Height: 375}))
		m, _ := ZooModel("ResNet-50")
		if program {
			p, err := Compile(m, CompilerConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.LoadProgram(p); err != nil {
				t.Fatal(err)
			}
		} else if err := e.LoadModel(m); err != nil {
			t.Fatal(err)
		}
		for now := time.Duration(0); now < time.Second; now += time.Millisecond {
			e.Step(now, time.Millisecond)
		}
		return e.Inferences()
	}
	layer, prog := run(false), run(true)
	if layer == 0 || prog == 0 {
		t.Fatalf("no inferences: layer=%d prog=%d", layer, prog)
	}
	ratio := float64(layer) / float64(prog)
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("throughput ratio layer/program = %v, want within 3x", ratio)
	}
}

// Property: compiled programs conserve MACs for every zoo model and any
// sane buffer size.
func TestCompileConservationProperty(t *testing.T) {
	zoo := Zoo()
	f := func(pick uint8, bufKB uint16) bool {
		m := zoo[int(pick)%len(zoo)]
		buf := int64(bufKB%2048+16) << 10
		p, err := Compile(m, CompilerConfig{WeightBufBytes: buf, ActBufBytes: buf})
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
