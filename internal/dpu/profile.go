package dpu

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// Profiling: where a model's inference time goes on the engine's
// roofline, layer by layer. The per-layer durations are exactly the
// segment lengths the side channel modulates, so the profile explains a
// model's Fig. 3 signature: long compute-bound stretches read as high
// current plateaus, memory-bound layers as DDR bursts.

// Bottleneck classifies what limits a layer.
type Bottleneck string

// Bottleneck kinds.
const (
	// ComputeBound layers saturate the MAC array.
	ComputeBound Bottleneck = "compute"
	// MemoryBound layers saturate the DDR bandwidth.
	MemoryBound Bottleneck = "memory"
	// CPUBound layers run on the processor (softmax).
	CPUBound Bottleneck = "cpu"
)

// LayerProfile is one layer's schedule entry.
type LayerProfile struct {
	// Name and Type of the layer.
	Name string
	Type LayerType
	// Duration on the engine's roofline.
	Duration time.Duration
	// Bound is the limiting resource.
	Bound Bottleneck
	// ComputeUtil is the MAC-array utilization during the layer.
	ComputeUtil float64
	// MemoryUtil is the DDR-bandwidth utilization during the layer.
	MemoryUtil float64
}

// Profile is a model's full schedule analysis.
type Profile struct {
	// Model profiled.
	Model string
	// Layers in execution order.
	Layers []LayerProfile
	// Total inference time (excluding preprocessing and gaps).
	Total time.Duration
	// ComputeTime and MemoryTime are the durations dominated by each
	// resource.
	ComputeTime time.Duration
	MemoryTime  time.Duration
}

// ProfileModel analyzes a model against an engine configuration (the
// zero EngineConfig profiles the default B4096-class engine — the hook
// fields are not needed for analysis).
func ProfileModel(m *Model, cfg EngineConfig) (*Profile, error) {
	if m == nil {
		return nil, errors.New("dpu: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Reuse the engine's defaulting; analysis needs no hooks or queries.
	if cfg.ClockHz == 0 {
		cfg.ClockHz = 300e6
	}
	if cfg.MACsPerCycle == 0 {
		cfg.MACsPerCycle = 2048
	}
	if cfg.ConvEfficiency == 0 {
		cfg.ConvEfficiency = 0.7
	}
	if cfg.DWConvEfficiency == 0 {
		cfg.DWConvEfficiency = 0.25
	}
	if cfg.DDRBandwidth == 0 {
		cfg.DDRBandwidth = 10e9
	}
	cycleRate := cfg.MACsPerCycle * cfg.ClockHz

	p := &Profile{Model: m.Name}
	for _, l := range m.Layers {
		lp := LayerProfile{Name: l.Name, Type: l.Type}
		if l.Type == Softmax {
			lp.Duration = 500 * time.Microsecond
			lp.Bound = CPUBound
			p.Layers = append(p.Layers, lp)
			p.Total += lp.Duration
			continue
		}
		eff := cfg.ConvEfficiency
		if l.Type == DWConv {
			eff = cfg.DWConvEfficiency
		}
		tc := float64(l.MACs) / (cycleRate * eff)
		tm := float64(l.WeightBytes+l.ActivationBytes) / cfg.DDRBandwidth
		dur := tc
		lp.Bound = ComputeBound
		if tm > dur {
			dur = tm
			lp.Bound = MemoryBound
		}
		if dur <= 0 {
			continue
		}
		lp.Duration = time.Duration(dur * float64(time.Second))
		lp.ComputeUtil = tc / dur
		lp.MemoryUtil = tm / dur
		p.Layers = append(p.Layers, lp)
		p.Total += lp.Duration
		if lp.Bound == ComputeBound {
			p.ComputeTime += lp.Duration
		} else {
			p.MemoryTime += lp.Duration
		}
	}
	if len(p.Layers) == 0 {
		return nil, fmt.Errorf("dpu: model %s has no schedulable layers", m.Name)
	}
	return p, nil
}

// TopLayers returns the n longest layers, longest first.
func (p *Profile) TopLayers(n int) []LayerProfile {
	out := append([]LayerProfile(nil), p.Layers...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Render writes a human-readable profile summary.
func (p *Profile) Render(w io.Writer, topN int) error {
	_, err := fmt.Fprintf(w, "%s: %v per inference (%.0f%% compute-bound, %.0f%% memory-bound)\n",
		p.Model, p.Total.Round(10*time.Microsecond),
		100*p.ComputeTime.Seconds()/p.Total.Seconds(),
		100*p.MemoryTime.Seconds()/p.Total.Seconds())
	if err != nil {
		return err
	}
	for _, l := range p.TopLayers(topN) {
		if _, err := fmt.Fprintf(w, "  %-14s %-8s %-8s %8v  (mac %.0f%%, ddr %.0f%%)\n",
			l.Name, l.Type, l.Bound, l.Duration.Round(time.Microsecond),
			100*l.ComputeUtil, 100*l.MemoryUtil); err != nil {
			return err
		}
	}
	return nil
}
