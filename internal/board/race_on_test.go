//go:build race

package board

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
