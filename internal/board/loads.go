package board

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// UtilizationSource is a rail load controlled by a utilization fraction,
// used to model the CPU power domains and the DDR memory: victims (the
// DPU inference driver, the RSA control task) set the utilization each
// tick and the rail sees a proportional current.
type UtilizationSource struct {
	name    string
	idle    float64 // amps at zero utilization
	dynamic float64 // additional amps at full utilization
	util    float64
}

// NewUtilizationSource returns a load drawing idle amps at util 0 and
// idle+dynamic amps at util 1.
func NewUtilizationSource(name string, idle, dynamic float64) (*UtilizationSource, error) {
	if name == "" {
		return nil, errors.New("board: load needs a name")
	}
	if idle < 0 || dynamic < 0 {
		return nil, fmt.Errorf("board: load %s: negative current", name)
	}
	return &UtilizationSource{name: name, idle: idle, dynamic: dynamic}, nil
}

// SourceName implements power.Source.
func (u *UtilizationSource) SourceName() string { return u.name }

// Current implements power.Source.
func (u *UtilizationSource) Current() float64 { return u.idle + u.dynamic*u.util }

// SetUtil sets the utilization, clamped to [0,1].
func (u *UtilizationSource) SetUtil(x float64) {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	u.util = x
}

// Util returns the present utilization.
func (u *UtilizationSource) Util() float64 { return u.util }

// BackgroundLoad models operating-system background activity on a rail
// (scheduler ticks, daemons, page-cache churn) as a mean-reverting
// Ornstein-Uhlenbeck random walk. It is what keeps the CPU and DRAM
// side channels from being noise-free: the paper's CPU sensors
// fingerprint models at 83.7%/55.7% rather than ~100% precisely because
// unrelated system activity shares those rails.
type BackgroundLoad struct {
	name    string
	mean    float64 // long-run mean current, amps
	sigma   float64 // diffusion strength, amps/√s
	revert  float64 // mean-reversion rate, 1/s
	maxAmps float64
	rng     *rand.Rand
	current float64
}

// NewBackgroundLoad validates the parameters and returns a load sitting
// at its mean.
func NewBackgroundLoad(name string, mean, sigma, revert, max float64, rng *rand.Rand) (*BackgroundLoad, error) {
	if name == "" {
		return nil, errors.New("board: background load needs a name")
	}
	if mean < 0 || sigma < 0 || revert <= 0 || max <= 0 || mean > max {
		return nil, fmt.Errorf("board: background load %s: bad parameters", name)
	}
	if rng == nil {
		return nil, fmt.Errorf("board: background load %s: nil random stream", name)
	}
	return &BackgroundLoad{
		name: name, mean: mean, sigma: sigma, revert: revert,
		maxAmps: max, rng: rng, current: mean,
	}, nil
}

// SourceName implements power.Source.
func (b *BackgroundLoad) SourceName() string { return b.name }

// Current implements power.Source.
func (b *BackgroundLoad) Current() float64 { return b.current }

// Step implements sim.Steppable: one Euler-Maruyama step of the OU
// process, clamped to [0, max].
func (b *BackgroundLoad) Step(now, dt time.Duration) {
	sec := dt.Seconds()
	b.current += b.revert*(b.mean-b.current)*sec +
		b.sigma*b.rng.NormFloat64()*math.Sqrt(sec)
	if b.current < 0 {
		b.current = 0
	}
	if b.current > b.maxAmps {
		b.current = b.maxAmps
	}
}
