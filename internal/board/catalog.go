// Package board assembles the simulated ARM-FPGA SoC evaluation boards.
//
// It has two halves: a static catalog of the commercial boards the paper
// surveys in Table I (family, stabilizer band, CPU, DRAM, number of
// integrated INA226 sensors, list price), and a dynamic, fully wired
// ZCU102 — the paper's experimental machine — combining the fabric, PDN,
// INA226, and hwmon substrates into one steppable system.
package board

import "repro/internal/pdn"

// Spec is one catalog row of Table I.
type Spec struct {
	// Name of the evaluation board, e.g. "ZCU102".
	Name string
	// Family is the FPGA family.
	Family string
	// VoltageBand is the stabilized FPGA core voltage range.
	VoltageBand pdn.Band
	// CPUModel is the ARM core implemented on the SoC.
	CPUModel string
	// DRAMGB is the on-board DRAM in gigabytes.
	DRAMGB int
	// INASensors is the number of integrated INA226 sensors.
	INASensors int
	// PriceUSD is the list price in dollars.
	PriceUSD int
}

// Families surveyed in Table I.
const (
	FamilyZynqUltraScale = "Zynq UltraScale+"
	FamilyVersal         = "Versal"
)

// Stabilizer bands per family (Table I).
var (
	BandZynqUltraScale = pdn.Band{Min: 0.825, Max: 0.876}
	BandVersal         = pdn.Band{Min: 0.775, Max: 0.825}
)

// Catalog returns the 8 boards of Table I, in the paper's column order.
// Every entry integrates INA226 sensors — the observation that motivates
// the attack's applicability claim.
func Catalog() []Spec {
	return []Spec{
		{Name: "ZCU102", Family: FamilyZynqUltraScale, VoltageBand: BandZynqUltraScale,
			CPUModel: "Cortex-A53", DRAMGB: 4, INASensors: 18, PriceUSD: 3234},
		{Name: "ZCU111", Family: FamilyZynqUltraScale, VoltageBand: BandZynqUltraScale,
			CPUModel: "Cortex-A53", DRAMGB: 4, INASensors: 14, PriceUSD: 14995},
		{Name: "ZCU216", Family: FamilyZynqUltraScale, VoltageBand: BandZynqUltraScale,
			CPUModel: "Cortex-A53", DRAMGB: 4, INASensors: 14, PriceUSD: 16995},
		{Name: "ZCU1285", Family: FamilyZynqUltraScale, VoltageBand: BandZynqUltraScale,
			CPUModel: "Cortex-A53", DRAMGB: 8, INASensors: 21, PriceUSD: 32394},
		{Name: "VEK280", Family: FamilyVersal, VoltageBand: BandVersal,
			CPUModel: "Cortex-A72", DRAMGB: 12, INASensors: 20, PriceUSD: 6995},
		{Name: "VCK190", Family: FamilyVersal, VoltageBand: BandVersal,
			CPUModel: "Cortex-A72", DRAMGB: 8, INASensors: 17, PriceUSD: 13195},
		{Name: "VHK158", Family: FamilyVersal, VoltageBand: BandVersal,
			CPUModel: "Cortex-A72", DRAMGB: 32, INASensors: 22, PriceUSD: 14995},
		{Name: "VPK180", Family: FamilyVersal, VoltageBand: BandVersal,
			CPUModel: "Cortex-A72", DRAMGB: 12, INASensors: 19, PriceUSD: 17995},
	}
}

// Lookup returns the catalog entry with the given name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// SensitiveSensor is one row of Table II: an INA226 whose measurements
// expose a security-relevant hardware component.
type SensitiveSensor struct {
	// Label is the board designator.
	Label string
	// Monitors describes the monitored component.
	Monitors string
}

// SensitiveSensors lists the four ZCU102 sensors of Table II.
func SensitiveSensors() []SensitiveSensor {
	return []SensitiveSensor{
		{Label: SensorCPUFull, Monitors: "current, voltage, and power for full-power domain of the ARM processor cores"},
		{Label: SensorCPULow, Monitors: "current, voltage, and power for low-power domain of the ARM processor cores"},
		{Label: SensorFPGA, Monitors: "current, voltage, and power for FPGA's logic and processing elements"},
		{Label: SensorDDR, Monitors: "current, voltage, and power for DDR memory"},
	}
}
