package board

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/sysfs"
)

func TestCatalogMatchesTableI(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog size = %d, want 8", len(cat))
	}
	wantSensors := map[string]int{
		"ZCU102": 18, "ZCU111": 14, "ZCU216": 14, "ZCU1285": 21,
		"VEK280": 20, "VCK190": 17, "VHK158": 22, "VPK180": 19,
	}
	for _, s := range cat {
		if got := wantSensors[s.Name]; got != s.INASensors {
			t.Errorf("%s sensors = %d, want %d", s.Name, s.INASensors, got)
		}
		if s.INASensors == 0 {
			t.Errorf("%s has no sensors (breaks applicability claim)", s.Name)
		}
		switch s.Family {
		case FamilyZynqUltraScale:
			if s.VoltageBand != BandZynqUltraScale || s.CPUModel != "Cortex-A53" {
				t.Errorf("%s: wrong US+ row: %+v", s.Name, s)
			}
		case FamilyVersal:
			if s.VoltageBand != BandVersal || s.CPUModel != "Cortex-A72" {
				t.Errorf("%s: wrong Versal row: %+v", s.Name, s)
			}
		default:
			t.Errorf("%s: unknown family %q", s.Name, s.Family)
		}
	}
}

func TestLookup(t *testing.T) {
	s, ok := Lookup("ZCU102")
	if !ok || s.PriceUSD != 3234 || s.DRAMGB != 4 {
		t.Fatalf("Lookup(ZCU102) = %+v, %v", s, ok)
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Fatal("Lookup false positive")
	}
}

func TestSensitiveSensorsTableII(t *testing.T) {
	rows := SensitiveSensors()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	want := []string{"ina226_u76", "ina226_u77", "ina226_u79", "ina226_u93"}
	for i, r := range rows {
		if r.Label != want[i] {
			t.Errorf("row %d label = %s, want %s", i, r.Label, want[i])
		}
		if r.Monitors == "" {
			t.Errorf("row %d has no description", i)
		}
	}
}

func newBoard(t *testing.T) *ZCU102 {
	t.Helper()
	b, err := NewZCU102(Config{Seed: 42})
	if err != nil {
		t.Fatalf("NewZCU102: %v", err)
	}
	return b
}

func TestBoardHas18Sensors(t *testing.T) {
	b := newBoard(t)
	if b.SensorCount() != 18 {
		t.Fatalf("SensorCount = %d, want 18 (Table I)", b.SensorCount())
	}
	if got := len(b.Hwmon().Entries()); got != 18 {
		t.Fatalf("hwmon entries = %d, want 18", got)
	}
}

func TestBoardAccessors(t *testing.T) {
	b := newBoard(t)
	for _, id := range []RailID{RailFPGA, RailCPUFull, RailCPULow, RailDDR} {
		if _, err := b.Rail(id); err != nil {
			t.Errorf("Rail(%s): %v", id, err)
		}
		if _, err := b.Regulator(id); err != nil {
			t.Errorf("Regulator(%s): %v", id, err)
		}
	}
	if _, err := b.Rail("bogus"); err == nil {
		t.Error("bogus rail accepted")
	}
	if _, err := b.Regulator("bogus"); err == nil {
		t.Error("bogus regulator accepted")
	}
	for _, label := range []string{SensorCPUFull, SensorCPULow, SensorFPGA, SensorDDR} {
		if _, err := b.Sensor(label); err != nil {
			t.Errorf("Sensor(%s): %v", label, err)
		}
	}
	if _, err := b.Sensor("ina226_u99"); err == nil {
		t.Error("bogus sensor accepted")
	}
	if b.CPUFull() == nil || b.CPULow() == nil || b.DDR() == nil || b.Fabric() == nil {
		t.Error("nil subsystem accessor")
	}
}

func TestIdleBoardBaseline(t *testing.T) {
	b := newBoard(t)
	b.Run(100 * time.Millisecond) // a couple of update intervals
	dev, _ := b.Sensor(SensorFPGA)
	r := dev.Read()
	if r.Updates == 0 {
		t.Fatal("FPGA sensor never latched")
	}
	// Idle fabric: only the static current, ~0.55 A.
	if math.Abs(r.CurrentAmps-fpgaStaticAmps) > 0.05 {
		t.Fatalf("idle FPGA current = %v, want ~%v", r.CurrentAmps, fpgaStaticAmps)
	}
	if !BandZynqUltraScale.Contains(r.BusVolts) {
		t.Fatalf("idle VCCINT = %v outside band", r.BusVolts)
	}
}

func TestCPULoadMovesCPUSensorOnly(t *testing.T) {
	b := newBoard(t)
	b.Run(100 * time.Millisecond)
	cpuDev, _ := b.Sensor(SensorCPUFull)
	fpgaDev, _ := b.Sensor(SensorFPGA)
	idleCPU := cpuDev.Read().CurrentAmps
	idleFPGA := fpgaDev.Read().CurrentAmps

	b.CPUFull().SetUtil(1.0)
	b.Run(100 * time.Millisecond)
	busyCPU := cpuDev.Read().CurrentAmps
	busyFPGA := fpgaDev.Read().CurrentAmps
	if busyCPU-idleCPU < 1.0 {
		t.Fatalf("full CPU load moved u76 by only %v A", busyCPU-idleCPU)
	}
	if math.Abs(busyFPGA-idleFPGA) > 0.05 {
		t.Fatalf("CPU load leaked into FPGA sensor: %v -> %v", idleFPGA, busyFPGA)
	}
}

func TestFabricLoadMovesFPGACurrentBy40LSBPerGroup(t *testing.T) {
	b := newBoard(t)
	// A stand-in for one power-virus group: 1000 active elements.
	c := &constCircuit{active: 1000}
	b.Fabric().MustPlace(c, []fabric.Region{{Row: 0, Col: 0}})
	b.Run(100 * time.Millisecond)
	dev, _ := b.Sensor(SensorFPGA)
	base := dev.Read().CurrentAmps
	c.active = 2000 // activate "one more group"
	b.Run(100 * time.Millisecond)
	delta := dev.Read().CurrentAmps - base
	// The calibration targets ~40 mA (= 40 LSBs) per 1 k instances.
	if delta < 0.030 || delta > 0.050 {
		t.Fatalf("per-group current step = %v A, want ~0.040", delta)
	}
}

func TestVoltageStaysInBandUnderFullLoad(t *testing.T) {
	b := newBoard(t)
	c := &constCircuit{active: 160000} // all 160 k virus instances
	b.Fabric().MustPlace(c, []fabric.Region{{Row: 0, Col: 0}})
	b.Run(200 * time.Millisecond)
	dev, _ := b.Sensor(SensorFPGA)
	r := dev.Read()
	if !BandZynqUltraScale.Contains(r.BusVolts) {
		t.Fatalf("VCCINT = %v outside stabilizer band under full load", r.BusVolts)
	}
	// Current, by contrast, should have swung by amps.
	if r.CurrentAmps < 5 {
		t.Fatalf("full-load FPGA current = %v, want > 5 A", r.CurrentAmps)
	}
}

func TestStabilizerAblation(t *testing.T) {
	b, err := NewZCU102(Config{Seed: 42, DisableStabilizer: true})
	if err != nil {
		t.Fatalf("NewZCU102: %v", err)
	}
	c := &constCircuit{active: 160000}
	b.Fabric().MustPlace(c, []fabric.Region{{Row: 0, Col: 0}})
	b.Run(200 * time.Millisecond)
	rail, _ := b.Rail(RailFPGA)
	if BandZynqUltraScale.Contains(rail.Voltage()) {
		t.Fatalf("unstabilized voltage %v unexpectedly in band", rail.Voltage())
	}
}

func TestHwmonPathEndToEnd(t *testing.T) {
	b := newBoard(t)
	b.Run(100 * time.Millisecond)
	e, ok := b.Hwmon().ByLabel(SensorFPGA)
	if !ok {
		t.Fatal("FPGA sensor not in hwmon")
	}
	raw, err := b.Sysfs().ReadFile(sysfs.Nobody, e.Attr("curr1_input"))
	if err != nil {
		t.Fatalf("unprivileged hwmon read: %v", err)
	}
	ma, err := strconv.Atoi(strings.TrimSpace(raw))
	if err != nil {
		t.Fatalf("parse %q: %v", raw, err)
	}
	if ma < 400 || ma > 700 {
		t.Fatalf("idle curr1_input = %d mA, want ~550", ma)
	}
}

func TestBoardDeterminism(t *testing.T) {
	run := func() float64 {
		b, err := NewZCU102(Config{Seed: 99})
		if err != nil {
			t.Fatalf("NewZCU102: %v", err)
		}
		b.CPUFull().SetUtil(0.5)
		b.Run(150 * time.Millisecond)
		dev, _ := b.Sensor(SensorCPUFull)
		return dev.Read().CurrentAmps
	}
	if run() != run() {
		t.Fatal("same seed produced different board state")
	}
}

func TestUtilizationSource(t *testing.T) {
	u, err := NewUtilizationSource("cpu", 0.3, 1.7)
	if err != nil {
		t.Fatalf("NewUtilizationSource: %v", err)
	}
	if u.Current() != 0.3 {
		t.Fatalf("idle current = %v", u.Current())
	}
	u.SetUtil(0.5)
	if math.Abs(u.Current()-1.15) > 1e-12 {
		t.Fatalf("half current = %v", u.Current())
	}
	u.SetUtil(2)
	if u.Util() != 1 {
		t.Fatalf("clamp high failed: %v", u.Util())
	}
	u.SetUtil(-1)
	if u.Util() != 0 {
		t.Fatalf("clamp low failed: %v", u.Util())
	}
	if u.SourceName() != "cpu" {
		t.Fatalf("SourceName = %q", u.SourceName())
	}
	if _, err := NewUtilizationSource("", 0, 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewUtilizationSource("x", -1, 0); err == nil {
		t.Fatal("negative idle accepted")
	}
}

// constCircuit is a fabric circuit with a settable activity level.
type constCircuit struct{ active float64 }

func (c *constCircuit) CircuitName() string           { return "const" }
func (c *constCircuit) Utilization() fabric.Resources { return fabric.Resources{LUTs: 1} }
func (c *constCircuit) Step(now, dt time.Duration)    {}
func (c *constCircuit) ActiveElements() float64       { return c.active }
