//go:build !race

package board

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are skipped under -race: the detector
// changes inlining and shadow-memory behaviour enough to add heap
// allocations that do not exist in production builds.
const raceEnabled = false
