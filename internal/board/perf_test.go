package board

import (
	"testing"
	"time"

	"repro/internal/sysfs"
	"repro/internal/trace"
)

// newSteadyBoard builds a ZCU102 and runs it past the initial latch
// transient so subsequent ticks exercise only the steady-state path.
func newSteadyBoard(t testing.TB) *SoC {
	t.Helper()
	b, err := NewZCU102(Config{Seed: 1})
	if err != nil {
		t.Fatalf("NewZCU102: %v", err)
	}
	b.Run(time.Second)
	return b
}

// TestTickSteadyStateZeroAllocs pins the tentpole allocation contract:
// once warmed up, the full board tick loop — rails, regulators, all 18
// INA226 conversions and their latches — performs zero heap allocations
// per tick. A regression here multiplies across the millions of ticks a
// fingerprinting campaign simulates.
func TestTickSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	b := newSteadyBoard(t)
	eng := b.Engine()
	allocs := testing.AllocsPerRun(500, func() { eng.Tick() })
	if allocs != 0 {
		t.Fatalf("steady-state tick allocated %v objects/op, want 0", allocs)
	}
}

// TestSamplingSteadyStateZeroAllocs extends the contract through the
// attacker's read path: a recorder polling curr1_input through sysfs
// (fast-path resolve, cached hwmon rendering, reserved trace capacity)
// must not allocate per tick either.
func TestSamplingSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	b := newSteadyBoard(t)
	probe := trace.SysfsProbe(b.Sysfs(), sysfs.Nobody, "class/hwmon/hwmon0/curr1_input", 1e-3)
	rec, err := trace.NewRecorder(35*time.Millisecond, probe)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	rec.Reserve(100000)
	b.Engine().MustRegister("recorder/alloc-test", rec)
	b.Run(time.Second) // warm the attribute render caches
	eng := b.Engine()
	allocs := testing.AllocsPerRun(500, func() { eng.Tick() })
	if allocs != 0 {
		t.Fatalf("steady-state sampling tick allocated %v objects/op, want 0", allocs)
	}
	if tr, err := rec.Trace(); err != nil || len(tr.Samples) == 0 {
		t.Fatalf("recorder captured %d samples, err %v — sampling path never ran", len(tr.Samples), err)
	}
}

// BenchmarkTick measures the steady-state cost of one simulation tick
// on a full ZCU102 (18 sensors); allocs/op must report 0.
func BenchmarkTick(b *testing.B) {
	soc := newSteadyBoard(b)
	eng := soc.Engine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Tick()
	}
}
