package board

import (
	"testing"
	"time"

	"repro/internal/fabric"
)

func TestWireEveryCatalogBoard(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			b, err := Wire(spec, Config{Seed: 9})
			if err != nil {
				t.Fatalf("Wire: %v", err)
			}
			if b.SensorCount() != spec.INASensors {
				t.Fatalf("sensors = %d, want %d", b.SensorCount(), spec.INASensors)
			}
			if b.Spec().Name != spec.Name {
				t.Fatalf("Spec = %+v", b.Spec())
			}
			b.Run(100 * time.Millisecond)
			dev, err := b.Sensor(SensorFPGA)
			if err != nil {
				t.Fatalf("Sensor: %v", err)
			}
			r := dev.Read()
			if r.Updates == 0 {
				t.Fatal("FPGA sensor never latched")
			}
			if !spec.VoltageBand.Contains(r.BusVolts) {
				t.Fatalf("VCCINT = %v outside %v band [%v,%v]",
					r.BusVolts, spec.Family, spec.VoltageBand.Min, spec.VoltageBand.Max)
			}
		})
	}
}

func TestNewByName(t *testing.T) {
	b, err := New("VCK190", Config{Seed: 1})
	if err != nil {
		t.Fatalf("New(VCK190): %v", err)
	}
	if b.Spec().Family != FamilyVersal {
		t.Fatalf("family = %s", b.Spec().Family)
	}
	if b.Fabric().Device().Name != "XCVC1902" {
		t.Fatalf("device = %s", b.Fabric().Device().Name)
	}
	if _, err := New("NoSuchBoard", Config{}); err == nil {
		t.Fatal("unknown board accepted")
	}
}

func TestWireValidation(t *testing.T) {
	if _, err := Wire(Spec{}, Config{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := Wire(Spec{Name: "x", INASensors: 2}, Config{}); err == nil {
		t.Fatal("too few sensors accepted")
	}
	spec, _ := Lookup("ZCU102")
	spec.VoltageBand.Min = 0
	if _, err := Wire(spec, Config{}); err == nil {
		t.Fatal("invalid band accepted")
	}
}

func TestVersalCPUDrawsMore(t *testing.T) {
	us, err := New("ZCU102", Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	versal, err := New("VEK280", Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	us.CPUFull().SetUtil(1)
	versal.CPUFull().SetUtil(1)
	us.Run(100 * time.Millisecond)
	versal.Run(100 * time.Millisecond)
	dUS, _ := us.Sensor(SensorCPUFull)
	dV, _ := versal.Sensor(SensorCPUFull)
	if dV.Read().CurrentAmps <= dUS.Read().CurrentAmps {
		t.Fatalf("A72 domain (%v A) should out-draw A53 domain (%v A)",
			dV.Read().CurrentAmps, dUS.Read().CurrentAmps)
	}
}

func TestVersalFabricFitsBiggerVirus(t *testing.T) {
	b, err := New("VHK158", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	free := b.Fabric().Free()
	if free.LUTs < 800000 {
		t.Fatalf("Versal free LUTs = %d, want ~900k", free.LUTs)
	}
	// Place a circuit too big for a ZU9EG but fine on Versal.
	big := &bigCircuit{}
	if err := b.Fabric().Place(big, []fabric.Region{{Row: 0, Col: 0}}); err != nil {
		t.Fatalf("Place on Versal: %v", err)
	}
	zcu, _ := NewZCU102(Config{Seed: 1})
	if err := zcu.Fabric().Place(&bigCircuit{}, []fabric.Region{{Row: 0, Col: 0}}); err == nil {
		t.Fatal("500k-LUT circuit fit on a ZU9EG")
	}
}

func TestThermalDriftOnBoard(t *testing.T) {
	hot, err := NewZCU102(Config{Seed: 3, EnableThermal: true})
	if err != nil {
		t.Fatal(err)
	}
	if hot.Thermal() == nil {
		t.Fatal("Thermal() nil with EnableThermal")
	}
	cold, err := NewZCU102(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Thermal() != nil {
		t.Fatal("Thermal() non-nil without EnableThermal")
	}
	// Heat the thermal board with a full-load circuit for 30 s, then idle.
	c := &constCircuit{active: 160000}
	hot.Fabric().MustPlace(c, []fabric.Region{{Row: 0, Col: 0}})
	hot.Run(30 * time.Second)
	if hot.Thermal().TemperatureC() < 26 {
		t.Fatalf("junction T = %v after 30 s at full load", hot.Thermal().TemperatureC())
	}
	c.active = 0
	hot.Run(200 * time.Millisecond)
	cold.Run(200 * time.Millisecond)
	devHot, _ := hot.Sensor(SensorFPGA)
	devCold, _ := cold.Sensor(SensorFPGA)
	// Thermal residue: the recently-busy board idles above the cold one.
	if devHot.Read().CurrentAmps <= devCold.Read().CurrentAmps {
		t.Fatalf("no thermal residue: hot idle %v A vs cold idle %v A",
			devHot.Read().CurrentAmps, devCold.Read().CurrentAmps)
	}
}

type bigCircuit struct{}

func (c *bigCircuit) CircuitName() string           { return "big" }
func (c *bigCircuit) Utilization() fabric.Resources { return fabric.Resources{LUTs: 500000} }
func (c *bigCircuit) Step(now, dt time.Duration)    {}
func (c *bigCircuit) ActiveElements() float64       { return 0 }
