package board

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/hwmon"
	"repro/internal/ina226"
	"repro/internal/pdn"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/sysfs"
)

// RailID names one of a board's dynamically modeled power rails.
type RailID string

// The four monitored rails of Table II.
const (
	// RailFPGA is VCCINT, supplying the PL's logic and DSP elements.
	RailFPGA RailID = "VCCINT"
	// RailCPUFull is VCCPSINTFP, the full-power APU domain.
	RailCPUFull RailID = "VCCPSINTFP"
	// RailCPULow is VCCPSINTLP, the low-power (PMU/RPU) domain.
	RailCPULow RailID = "VCCPSINTLP"
	// RailDDR is VCCPSDDR, the DDR memory rail.
	RailDDR RailID = "VCCPSDDR"
)

// Board designators of the four sensitive sensors (Table II). The
// designators are the ZCU102's; the other catalog boards expose their
// equivalent sensors under the same labels so attack code can address
// them uniformly.
const (
	SensorCPUFull = "ina226_u76"
	SensorCPULow  = "ina226_u77"
	SensorFPGA    = "ina226_u79"
	SensorDDR     = "ina226_u93"
)

// Electrical calibration of the simulated boards. The constants are
// chosen so the simulated channels reproduce the paper's Fig. 2 shape:
// one power-virus group (1 k instances) moves the FPGA current by about
// 40 mA (≈40 of the 1 mA hwmon LSBs), the regulated VCCINT stays inside
// the family's stabilizer band with only a few 1.25 mV LSBs of
// load-dependent droop, and power moves by 1–2 of its 25 mW LSBs per
// group.
const (
	// CapPerElement: 1.57e-13 F × 300 MHz × 0.85 V ≈ 40 µA per active
	// element, i.e. 40 mA per 1 k virus instances.
	CapPerElement = 1.57e-13

	fpgaStaticAmps  = 0.55
	fpgaNoiseAmps   = 0.008
	fpgaShuntOhms   = 0.002
	fpgaLoadLineOhm = 0.0008

	cpuFullIdleAmps    = 0.35
	cpuFullDynamicAmps = 1.80
	cpuLowIdleAmps     = 0.15
	cpuLowDynamicAmps  = 0.35
	ddrIdleAmps        = 0.40
	ddrDynamicAmps     = 1.60
	psNoiseAmps        = 0.005
	psShuntOhms        = 0.005

	currentLSBAmps = 1e-3 // the boards' 1 mA current resolution

	// a72PowerScale inflates the CPU-domain currents on Versal boards,
	// whose Cortex-A72 cores draw more than the US+ boards' A53s.
	a72PowerScale = 1.4
)

// Config configures a simulated board.
type Config struct {
	// Seed is the root seed for every noise stream. Defaults to 1.
	Seed int64
	// Step is the simulation tick. Defaults to 500 µs, which resolves
	// the 2 ms minimum INA226 update interval while keeping multi-second
	// experiments fast.
	Step time.Duration
	// UpdateInterval is the initial hwmon update interval of every
	// sensor. Zero means the 35 ms board default.
	UpdateInterval time.Duration
	// DisableStabilizer runs the FPGA rail unregulated (ablation).
	DisableStabilizer bool
	// EnableThermal adds the die's thermal mass: sustained PL load heats
	// the junction and the FPGA rail's leakage drifts upward with
	// temperature (≈+0.4 %/K, τ=10 s). Off by default so the calibrated
	// experiments stay drift-free; the thermal-residue extension turns
	// it on.
	EnableThermal bool
	// Faults, when non-nil and enabled, injects the profile's fault mix
	// into the whole sensor stack: transient sysfs read errors, INA226
	// stale latches and bit flips, regulator transients, and hwmon
	// hotplug renumbering. All fault randomness comes from the board
	// engine's named streams, so faulted runs stay deterministic.
	Faults *faults.Profile
}

// DefaultStep is the default board simulation tick.
const DefaultStep = 500 * time.Microsecond

// miscRail describes an additional monitored rail that carries no
// victim activity in the experiments.
type miscRail struct {
	label string
	rail  string
	volts float64
	amps  float64
}

// zcu102MiscRails lists the remaining ZCU102 INA226 designators
// (UG1182), bringing that board's sensor total to the 18 of Table I.
var zcu102MiscRails = []miscRail{
	{"ina226_u78", "VCCPSAUX", 1.80, 0.10},
	{"ina226_u87", "VCCPSPLL", 1.20, 0.05},
	{"ina226_u85", "MGTRAVCC", 0.85, 0.08},
	{"ina226_u86", "MGTRAVTT", 1.80, 0.06},
	{"ina226_u88", "VCCOPS", 3.30, 0.12},
	{"ina226_u15", "VCCOPS3", 3.30, 0.10},
	{"ina226_u92", "VCCPSDDRPLL", 1.80, 0.03},
	{"ina226_u81", "VCCBRAM", 0.85, 0.07},
	{"ina226_u80", "VCCAUX", 1.80, 0.15},
	{"ina226_u84", "VCC1V2", 1.20, 0.20},
	{"ina226_u16", "VCC3V3", 3.30, 0.25},
	{"ina226_u65", "VADJ_FMC", 1.80, 0.05},
	{"ina226_u74", "MGTAVCC", 0.90, 0.09},
	{"ina226_u75", "MGTAVTT", 1.20, 0.11},
}

// miscRailsFor returns spec.INASensors-4 misc rails for a board: the
// ZCU102 gets its documented designators; other boards get generated
// ones (their user guides use different numbering).
func miscRailsFor(spec Spec) []miscRail {
	n := spec.INASensors - 4
	if n < 0 {
		n = 0
	}
	if spec.Name == "ZCU102" && n <= len(zcu102MiscRails) {
		return zcu102MiscRails[:n]
	}
	out := make([]miscRail, n)
	for i := range out {
		src := zcu102MiscRails[i%len(zcu102MiscRails)]
		out[i] = miscRail{
			label: fmt.Sprintf("ina226_u%d", 100+i),
			rail:  src.rail,
			volts: src.volts,
			amps:  src.amps,
		}
	}
	return out
}

// deviceFor returns the FPGA part model for a board's family: the
// ZCU102's XCZU9EG for Zynq UltraScale+, a Versal AI Core class part
// otherwise.
func deviceFor(spec Spec) fabric.Device {
	if spec.Family == FamilyVersal {
		return fabric.Device{
			Name:    "XCVC1902",
			Total:   fabric.Resources{LUTs: 899840, FFs: 1799680, DSPs: 1968, BRAMKb: 130000},
			ClockHz: 300e6,
			Rows:    8,
			Cols:    6,
		}
	}
	return fabric.ZU9EG()
}

// SoC is a simulated ARM-FPGA evaluation board: engine, fabric, rails,
// regulators, INA226 sensors per Table I, and a hwmon-populated sysfs
// tree.
type SoC struct {
	spec Spec

	eng  *sim.Engine
	tree *sysfs.FS
	hw   *hwmon.Subsystem
	fab  *fabric.Fabric

	rails map[RailID]*power.Rail
	regs  map[RailID]*pdn.Regulator

	cpuFull *UtilizationSource
	cpuLow  *UtilizationSource
	ddr     *UtilizationSource

	thermal *power.ThermalMass // nil unless Config.EnableThermal

	sensors map[string]*ina226.Device

	injector *faults.Injector // nil unless Config.Faults enabled
}

// ZCU102 is an alias for the generic SoC type: the ZCU102 is the
// paper's experimental machine and the default board everywhere.
type ZCU102 = SoC

// NewZCU102 builds and wires the paper's evaluation board.
func NewZCU102(cfg Config) (*SoC, error) {
	spec, _ := Lookup("ZCU102")
	return Wire(spec, cfg)
}

// New builds any catalog board by name.
func New(name string, cfg Config) (*SoC, error) {
	spec, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("board: unknown board %q", name)
	}
	return Wire(spec, cfg)
}

// Wire assembles a board from a catalog spec: the family's FPGA device
// and stabilizer band, CPU domains scaled to the CPU model, a DDR rail,
// and the spec's full complement of INA226 sensors.
func Wire(spec Spec, cfg Config) (*SoC, error) {
	if spec.Name == "" || spec.INASensors < 4 {
		return nil, fmt.Errorf("board: spec %q needs a name and >= 4 sensors", spec.Name)
	}
	if spec.VoltageBand.Min <= 0 || spec.VoltageBand.Min >= spec.VoltageBand.Max {
		return nil, fmt.Errorf("board: spec %q has an invalid voltage band", spec.Name)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Step == 0 {
		cfg.Step = DefaultStep
	}
	if cfg.Step < 0 {
		return nil, errors.New("board: negative step")
	}
	eng, err := sim.NewEngine(cfg.Step, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tree := sysfs.New()
	hw, err := hwmon.New(tree)
	if err != nil {
		return nil, err
	}
	b := &SoC{
		spec:    spec,
		eng:     eng,
		tree:    tree,
		hw:      hw,
		rails:   make(map[RailID]*power.Rail),
		regs:    make(map[RailID]*pdn.Regulator),
		sensors: make(map[string]*ina226.Device),
	}

	// The FPGA rail runs at the family-typical VCCINT nominal (0.85 V on
	// Zynq UltraScale+, 0.80 V on Versal), inside the stabilizer band.
	band := spec.VoltageBand
	nominal := 0.85
	if spec.Family == FamilyVersal {
		nominal = 0.80
	}
	if !band.Contains(nominal) {
		nominal = (band.Min + band.Max) / 2
	}
	cpuScale := 1.0
	if spec.CPUModel == "Cortex-A72" {
		cpuScale = a72PowerScale
	}

	// --- FPGA rail: fabric load, stabilized VCCINT. ---
	fpgaRail, err := power.NewRail(power.RailConfig{
		Name: string(RailFPGA), NominalVoltage: nominal,
		StaticCurrent: fpgaStaticAmps, NoiseSigma: fpgaNoiseAmps,
		Rand: eng.Stream("rail/" + string(RailFPGA)),
	})
	if err != nil {
		return nil, err
	}
	b.rails[RailFPGA] = fpgaRail
	b.fab, err = fabric.New(fabric.Config{
		Device:        deviceFor(spec),
		CapPerElement: CapPerElement,
		Voltage:       fpgaRail.Voltage,
	})
	if err != nil {
		return nil, err
	}
	fpgaRail.MustAttach(b.fab)
	fpgaReg, err := pdn.NewRegulator(pdn.RegulatorConfig{
		Rail:        fpgaRail,
		Band:        band,
		Drop:        pdn.DropModel{ResistanceOhm: 0.008, InductanceHenry: 2e-10},
		LoadLineOhm: fpgaLoadLineOhm,
		Disabled:    cfg.DisableStabilizer,
	})
	if err != nil {
		return nil, err
	}
	b.regs[RailFPGA] = fpgaReg

	// --- PS rails: utilization-driven CPU domains and DDR. ---
	type psRail struct {
		id            RailID
		volts         float64
		band          pdn.Band
		idle, dynamic float64
		load          **UtilizationSource
	}
	psDefs := []psRail{
		{RailCPUFull, 0.85, BandZynqUltraScale, cpuFullIdleAmps * cpuScale, cpuFullDynamicAmps * cpuScale, &b.cpuFull},
		{RailCPULow, 0.85, BandZynqUltraScale, cpuLowIdleAmps * cpuScale, cpuLowDynamicAmps * cpuScale, &b.cpuLow},
		{RailDDR, 1.20, pdn.Band{Min: 1.14, Max: 1.26}, ddrIdleAmps, ddrDynamicAmps, &b.ddr},
	}
	// OS background activity per PS rail: mean/diffusion/reversion/max,
	// calibrated so the CPU channels are informative but noisy (the
	// paper's 83.7%/55.7% CPU fingerprinting accuracies) while DDR stays
	// comparatively clean.
	background := map[RailID][4]float64{
		RailCPUFull: {0.10, 0.30, 20, 0.8},
		RailCPULow:  {0.05, 0.04, 20, 0.4},
		RailDDR:     {0.08, 0.06, 20, 0.6},
	}
	for _, def := range psDefs {
		rail, err := power.NewRail(power.RailConfig{
			Name: string(def.id), NominalVoltage: def.volts,
			StaticCurrent: 0, NoiseSigma: psNoiseAmps,
			Rand: eng.Stream("rail/" + string(def.id)),
		})
		if err != nil {
			return nil, err
		}
		load, err := NewUtilizationSource("load/"+string(def.id), def.idle, def.dynamic)
		if err != nil {
			return nil, err
		}
		rail.MustAttach(load)
		bg := background[def.id]
		os, err := NewBackgroundLoad("os/"+string(def.id), bg[0], bg[1], bg[2], bg[3],
			eng.Stream("os/"+string(def.id)))
		if err != nil {
			return nil, err
		}
		rail.MustAttach(os)
		eng.MustRegister("os/"+string(def.id), os)
		reg, err := pdn.NewRegulator(pdn.RegulatorConfig{
			Rail: rail, Band: def.band,
			Drop:        pdn.DropModel{ResistanceOhm: 0.005, InductanceHenry: 2e-10},
			LoadLineOhm: 0.002,
		})
		if err != nil {
			return nil, err
		}
		b.rails[def.id] = rail
		b.regs[def.id] = reg
		*def.load = load
	}

	// --- Engine wiring: loads feed rails, rails feed regulators, and
	// the sensors sample last so each tick they see settled values. ---
	eng.MustRegister("fabric", b.fab)
	for _, id := range []RailID{RailFPGA, RailCPUFull, RailCPULow, RailDDR} {
		eng.MustRegister("rail/"+string(id), b.rails[id])
		eng.MustRegister("reg/"+string(id), b.regs[id])
	}
	if cfg.EnableThermal {
		b.thermal, err = power.NewThermalMass(power.ThermalConfig{Rail: fpgaRail})
		if err != nil {
			return nil, err
		}
		eng.MustRegister("thermal/"+string(RailFPGA), b.thermal)
		// The PS sysmon exposes the die temperature through hwmon too —
		// another unprivileged window onto the same physical state.
		if _, err := hw.RegisterTemperature("sysmon_ps", b.thermal.TemperatureC); err != nil {
			return nil, err
		}
	}

	// --- Sensors: the four sensitive ones (Table II)... ---
	sensitive := []struct {
		label string
		rail  RailID
		shunt float64
	}{
		{SensorCPUFull, RailCPUFull, psShuntOhms},
		{SensorCPULow, RailCPULow, psShuntOhms},
		{SensorFPGA, RailFPGA, fpgaShuntOhms},
		{SensorDDR, RailDDR, psShuntOhms},
	}
	for _, sd := range sensitive {
		rail := b.rails[sd.rail]
		if err := b.addSensor(cfg, sd.label, sd.shunt, ina226.Probe{
			CurrentAmps: rail.Current,
			BusVolts:    rail.Voltage,
		}); err != nil {
			return nil, err
		}
	}
	// --- ...and the board's remaining rails, carrying fixed bias loads. ---
	for _, m := range miscRailsFor(spec) {
		m := m
		rng := eng.Stream("misc/" + m.label)
		if err := b.addSensor(cfg, m.label, psShuntOhms, ina226.Probe{
			CurrentAmps: func() float64 { return m.amps + rng.NormFloat64()*0.001 },
			BusVolts:    func() float64 { return m.volts },
		}); err != nil {
			return nil, err
		}
	}

	// --- Fault injection (optional): hook every layer of the stack. ---
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj := faults.New(*cfg.Faults, eng)
		b.injector = inj
		tree.SetReadFault(inj.SysfsReadFault)
		for label, dev := range b.sensors {
			dev.SetFaults(inj.SensorFaults(label))
		}
		for id, reg := range b.regs {
			reg.SetDisturbance(inj.RegulatorDisturbance(string(id)))
		}
		// Registered last so a renumber lands after the tick's sensor
		// updates, like an asynchronous kernel event between samples.
		if hp := inj.HotplugStepper(hw); hp != nil {
			eng.MustRegister("faults/hotplug", hp)
		}
	}
	return b, nil
}

func (b *SoC) addSensor(cfg Config, label string, shunt float64, probe ina226.Probe) error {
	dev, err := ina226.New(ina226.Config{
		Label:           label,
		ShuntOhms:       shunt,
		CurrentLSB:      currentLSBAmps,
		UpdateInterval:  cfg.UpdateInterval,
		NoiseShuntVolts: 2e-6,
		NoiseBusVolts:   50e-6,
		Probe:           probe,
		Rand:            b.eng.Stream("ina226/" + label),
	})
	if err != nil {
		return err
	}
	if _, err := b.hw.Register(dev); err != nil {
		return err
	}
	b.eng.MustRegister("ina226/"+label, dev)
	b.sensors[label] = dev
	return nil
}

// Spec returns the catalog entry the board was wired from.
func (b *SoC) Spec() Spec { return b.spec }

// Engine returns the board's simulation engine.
func (b *SoC) Engine() *sim.Engine { return b.eng }

// Sysfs returns the board's simulated sysfs tree.
func (b *SoC) Sysfs() *sysfs.FS { return b.tree }

// Hwmon returns the board's hwmon subsystem.
func (b *SoC) Hwmon() *hwmon.Subsystem { return b.hw }

// Fabric returns the PL fabric for deploying victim circuits.
func (b *SoC) Fabric() *fabric.Fabric { return b.fab }

// Rail returns one of the four monitored rails.
func (b *SoC) Rail(id RailID) (*power.Rail, error) {
	r, ok := b.rails[id]
	if !ok {
		return nil, fmt.Errorf("board: unknown rail %q", id)
	}
	return r, nil
}

// Regulator returns the regulator of one of the monitored rails.
func (b *SoC) Regulator(id RailID) (*pdn.Regulator, error) {
	r, ok := b.regs[id]
	if !ok {
		return nil, fmt.Errorf("board: unknown rail %q", id)
	}
	return r, nil
}

// CPUFull returns the full-power CPU domain load.
func (b *SoC) CPUFull() *UtilizationSource { return b.cpuFull }

// CPULow returns the low-power CPU domain load.
func (b *SoC) CPULow() *UtilizationSource { return b.cpuLow }

// DDR returns the DDR memory load.
func (b *SoC) DDR() *UtilizationSource { return b.ddr }

// Sensor returns an INA226 by board designator.
func (b *SoC) Sensor(label string) (*ina226.Device, error) {
	d, ok := b.sensors[label]
	if !ok {
		return nil, fmt.Errorf("board: unknown sensor %q", label)
	}
	return d, nil
}

// SensorCount returns the number of integrated sensors.
func (b *SoC) SensorCount() int { return len(b.sensors) }

// Thermal returns the FPGA die's thermal mass, or nil when the board
// was built without Config.EnableThermal.
func (b *SoC) Thermal() *power.ThermalMass { return b.thermal }

// FaultInjector returns the board's fault injector, or nil when the
// board was built without an enabled Config.Faults profile.
func (b *SoC) FaultInjector() *faults.Injector { return b.injector }

// Run advances the board by d of simulated time.
func (b *SoC) Run(d time.Duration) { b.eng.Run(d) }
