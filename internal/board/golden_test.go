package board_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/ina226"
	"repro/internal/virus"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files under testdata/golden")

// goldenSeed pins the whole wiring; the traces are a regression surface
// for every substrate underneath (fabric, PDN, regulator, INA226,
// hwmon), so any change to the simulated physics shows up as a diff.
const goldenSeed = 1234

// goldenLevels is the deterministic activity schedule driven through
// the power virus on every board.
var goldenLevels = []int{0, 20, 60, 120, 160}

const (
	goldenWarmup  = 3 // update intervals discarded after a level switch
	goldenSamples = 5 // latched current readings recorded per level
)

// goldenTrace runs the schedule on one catalog board and returns the
// FPGA-sensor current trace quantized to whole milliamps (the INA226
// current register times its 1 mA LSB), one line per sample.
func goldenTrace(t *testing.T, spec board.Spec) []string {
	t.Helper()
	b, err := board.Wire(spec, board.Config{Seed: goldenSeed})
	if err != nil {
		t.Fatalf("wire %s: %v", spec.Name, err)
	}
	array, err := virus.New(virus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := array.Deploy(b.Fabric()); err != nil {
		t.Fatalf("deploy on %s: %v", spec.Name, err)
	}
	dev, err := b.Sensor(board.SensorFPGA)
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	interval := dev.UpdateInterval()
	b.Run(5 * interval) // settle the rails before the schedule starts

	var lines []string
	for _, level := range goldenLevels {
		if err := array.SetActiveGroups(level); err != nil {
			t.Fatalf("%s: level %d: %v", spec.Name, level, err)
		}
		b.Run(goldenWarmup * interval)
		for s := 0; s < goldenSamples; s++ {
			b.Run(interval)
			raw, err := dev.ReadRegister(ina226.RegCurrent)
			if err != nil {
				t.Fatalf("%s: read current: %v", spec.Name, err)
			}
			mA := int(int16(raw))
			lines = append(lines, fmt.Sprintf("%d %d %d", level, s, mA))
		}
	}
	return lines
}

// TestGoldenCurrentTraces locks the simulated FPGA current response of
// every Table I board against reference traces under testdata/golden.
// Regenerate with: go test ./internal/board -run GoldenCurrentTraces -update
func TestGoldenCurrentTraces(t *testing.T) {
	for _, spec := range board.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			lines := goldenTrace(t, spec)
			content := fmt.Sprintf("# golden FPGA current trace: board %s seed %d\n# columns: level sample mA\n%s\n",
				spec.Name, goldenSeed, strings.Join(lines, "\n"))
			path := filepath.Join("testdata", "golden", spec.Name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if string(want) != content {
				t.Errorf("%s: current trace deviates from golden file %s\n--- got ---\n%s--- want ---\n%s",
					spec.Name, path, content, want)
			}
		})
	}
}

// TestGoldenTracesRespond sanity-checks the golden schedule itself: on
// every board the recorded current must increase from the idle level to
// full virus activation, so the goldens can never silently pin a dead
// channel.
func TestGoldenTracesRespond(t *testing.T) {
	for _, spec := range board.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			lines := goldenTrace(t, spec)
			var idle, full int
			var nIdle, nFull int
			for _, ln := range lines {
				var level, s, mA int
				if _, err := fmt.Sscanf(ln, "%d %d %d", &level, &s, &mA); err != nil {
					t.Fatal(err)
				}
				switch level {
				case goldenLevels[0]:
					idle += mA
					nIdle++
				case goldenLevels[len(goldenLevels)-1]:
					full += mA
					nFull++
				}
			}
			if nIdle == 0 || nFull == 0 {
				t.Fatal("schedule produced no samples")
			}
			if full/nFull <= idle/nIdle {
				t.Errorf("full-activation current %d mA not above idle %d mA", full/nFull, idle/nIdle)
			}
		})
	}
}
