// Package ina226 models the Texas Instruments INA226 current/voltage/
// power monitor, the sensor AmpereBleed exploits.
//
// The model follows the datasheet arithmetic (TI SBOS547):
//
//   - the shunt-voltage ADC has a 2.5 µV LSB,
//   - the bus-voltage ADC has a 1.25 mV LSB (the fixed, coarse resolution
//     that cripples the voltage side channel in the paper),
//   - the calibration register is CAL = 0.00512 / (CurrentLSB · R_shunt),
//   - the current register is Current = (ShuntReg · CAL) / 2048,
//   - the power register is Power = (CurrentReg · BusReg) / 20000, with a
//     power LSB fixed at 25 × CurrentLSB (the "ratio of 25" the paper
//     cites; with the boards' 1 mA current LSB this truncates power to
//     25 mW steps).
//
// During each update interval the device integrates the analog rail
// quantities (the hardware's conversion-time + averaging filter), then
// latches quantized register values that stay constant until the next
// update — exactly the behaviour an unprivileged reader polling hwmon
// observes. The hwmon update interval is configurable between 2 and
// 35 ms; the default is 35 ms and changing it requires root, both facts
// the attack model depends on.
package ina226

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/obs"
)

// Conversion-cycle and register-read counters, aggregated over every
// device in the process (the fingerprinting pipeline runs many boards,
// each with up to 18 sensors, in parallel). The ratio of reads to
// conversions is the oversampling factor: reads beyond one per
// conversion return the same latched registers and carry no new
// side-channel information.
var (
	obsConversions   = obs.C("ina226.conversions")
	obsRegisterReads = obs.C("ina226.register_reads")
)

// Datasheet and driver constants.
const (
	// ShuntLSB is the shunt-voltage ADC resolution: 2.5 µV.
	ShuntLSB = 2.5e-6
	// BusLSB is the bus-voltage ADC resolution: 1.25 mV.
	BusLSB = 1.25e-3
	// PowerLSBRatio fixes the power LSB at 25× the current LSB.
	PowerLSBRatio = 25
	// MinUpdateInterval is the smallest hwmon update interval.
	MinUpdateInterval = 2 * time.Millisecond
	// MaxUpdateInterval is the largest (and default) hwmon update interval.
	MaxUpdateInterval = 35 * time.Millisecond
	// DefaultUpdateInterval is the boards' out-of-the-box setting; an
	// unprivileged attacker is stuck with it.
	DefaultUpdateInterval = MaxUpdateInterval
)

// Probe supplies the analog quantities at the sensor's monitoring point.
type Probe struct {
	// CurrentAmps returns the instantaneous rail current in amps.
	CurrentAmps func() float64
	// BusVolts returns the instantaneous rail voltage in volts.
	BusVolts func() float64
}

// Config describes one INA226 instance.
type Config struct {
	// Label is the board designator, e.g. "ina226_u79".
	Label string
	// ShuntOhms is the dedicated shunt resistor value. Required > 0.
	ShuntOhms float64
	// CurrentLSB is the current register resolution in amps; the boards
	// expose 1 mA. Required > 0.
	CurrentLSB float64
	// UpdateInterval is the initial hwmon update interval; zero means
	// DefaultUpdateInterval. Otherwise must lie in [Min,Max].
	UpdateInterval time.Duration
	// NoiseShuntVolts is the RMS analog noise on the shunt input, volts.
	NoiseShuntVolts float64
	// NoiseBusVolts is the RMS analog noise on the bus input, volts.
	NoiseBusVolts float64
	// Probe supplies the monitored rail. Both functions required.
	Probe Probe
	// Rand supplies the noise stream; required when any noise is set.
	Rand *rand.Rand
}

// Device is one simulated INA226.
type Device struct {
	label      string
	shuntOhms  float64
	currentLSB float64
	cal        uint16
	interval   time.Duration
	probe      Probe
	rng        *rand.Rand
	nShunt     float64
	nBus       float64

	// integration state within the current update window
	accShunt float64 // volt-seconds across the shunt
	accBus   float64 // volt-seconds on the bus
	accTime  time.Duration

	// latched registers
	shuntReg   int32
	busReg     int32
	currentReg int32
	powerReg   int32
	updates    uint64

	// I2C-visible configuration state (registers.go)
	configReg  uint16
	maskEnable uint16
	alertLimit uint16

	// fault-injection hooks (optional; see SetFaults)
	faults FaultHooks

	// Cached dt→seconds conversion for the fixed-step tick loop. The
	// engine steps with a constant dt, so the division in
	// time.Duration.Seconds runs once instead of once per tick; reusing
	// the cached value is bit-identical to recomputing it.
	lastDt  time.Duration
	lastSec float64
}

// New validates cfg and returns a device with all registers zero.
func New(cfg Config) (*Device, error) {
	if cfg.Label == "" {
		return nil, errors.New("ina226: sensor needs a label")
	}
	if cfg.ShuntOhms <= 0 {
		return nil, fmt.Errorf("ina226 %s: non-positive shunt", cfg.Label)
	}
	if cfg.CurrentLSB <= 0 {
		return nil, fmt.Errorf("ina226 %s: non-positive current LSB", cfg.Label)
	}
	if cfg.Probe.CurrentAmps == nil || cfg.Probe.BusVolts == nil {
		return nil, fmt.Errorf("ina226 %s: incomplete probe", cfg.Label)
	}
	if (cfg.NoiseShuntVolts > 0 || cfg.NoiseBusVolts > 0) && cfg.Rand == nil {
		return nil, fmt.Errorf("ina226 %s: noise requires a random stream", cfg.Label)
	}
	if cfg.NoiseShuntVolts < 0 || cfg.NoiseBusVolts < 0 {
		return nil, fmt.Errorf("ina226 %s: negative noise", cfg.Label)
	}
	interval := cfg.UpdateInterval
	if interval == 0 {
		interval = DefaultUpdateInterval
	}
	if interval < MinUpdateInterval || interval > MaxUpdateInterval {
		return nil, fmt.Errorf("ina226 %s: update interval %v outside [%v,%v]",
			cfg.Label, interval, MinUpdateInterval, MaxUpdateInterval)
	}
	calF := 0.00512 / (cfg.CurrentLSB * cfg.ShuntOhms)
	if calF < 1 || calF > math.MaxUint16 {
		return nil, fmt.Errorf("ina226 %s: calibration %v out of register range (check shunt/LSB)",
			cfg.Label, calF)
	}
	d := &Device{
		label:      cfg.Label,
		shuntOhms:  cfg.ShuntOhms,
		currentLSB: cfg.CurrentLSB,
		cal:        uint16(math.Round(calF)),
		interval:   interval,
		probe:      cfg.Probe,
		rng:        cfg.Rand,
		nShunt:     cfg.NoiseShuntVolts,
		nBus:       cfg.NoiseBusVolts,
		configReg:  cfgDefault,
	}
	d.encodeIntervalInConfig()
	return d, nil
}

// LatchedRegs is the set of registers written by one conversion latch,
// exposed to fault hooks so injected corruption happens exactly at the
// latch boundary — the point where a real device's analog glitch or
// I2C bit error would enter the digital domain.
type LatchedRegs struct {
	Shunt, Bus, Current, Power int32
}

// FaultHooks are the sensor-level fault-injection points (see
// internal/faults). Both hooks are optional; they run inside latch(),
// so every decision is a deterministic function of the device's
// conversion schedule.
type FaultHooks struct {
	// SkipLatch, when it returns true, drops the pending conversion:
	// the registers keep their previous (stale) values, the update
	// counter does not advance, and readers observing Updates see the
	// stall — the "stale value between conversion intervals" failure
	// mode of the hwmon stack.
	SkipLatch func() bool
	// CorruptLatch may mutate the freshly computed registers before
	// they are latched (e.g. flip a bit), modeling conversion glitches.
	CorruptLatch func(*LatchedRegs)
}

// SetFaults installs the fault hooks; the zero FaultHooks removes them.
func (d *Device) SetFaults(h FaultHooks) { d.faults = h }

// Label returns the board designator.
func (d *Device) Label() string { return d.label }

// ShuntOhms returns the shunt resistor value.
func (d *Device) ShuntOhms() float64 { return d.shuntOhms }

// CurrentLSB returns the current register resolution in amps.
func (d *Device) CurrentLSB() float64 { return d.currentLSB }

// PowerLSB returns the power register resolution in watts (25×CurrentLSB).
func (d *Device) PowerLSB() float64 { return PowerLSBRatio * d.currentLSB }

// Calibration returns the calibration register value.
func (d *Device) Calibration() uint16 { return d.cal }

// UpdateInterval returns the present hwmon update interval.
func (d *Device) UpdateInterval() time.Duration { return d.interval }

// SetUpdateInterval changes the update interval. The hwmon layer gates
// this behind root; the device itself only range-checks. The averaging
// bits of the configuration register are updated to the nearest
// encoding, mirroring how the ina2xx driver implements the attribute.
func (d *Device) SetUpdateInterval(v time.Duration) error {
	if v < MinUpdateInterval || v > MaxUpdateInterval {
		return fmt.Errorf("ina226 %s: update interval %v outside [%v,%v]",
			d.label, v, MinUpdateInterval, MaxUpdateInterval)
	}
	d.interval = v
	d.encodeIntervalInConfig()
	return nil
}

// encodeIntervalInConfig picks the AVG encoding closest to the present
// interval, keeping the configured conversion times.
func (d *Device) encodeIntervalInConfig() {
	ctBus := convTimes[(d.configReg>>cfgVBusShift)&0x7]
	ctShunt := convTimes[(d.configReg>>cfgVShShift)&0x7]
	per := ctBus + ctShunt
	best, bestDiff := 0, time.Duration(math.MaxInt64)
	for i, n := range avgCounts {
		diff := time.Duration(n)*per - d.interval
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = i, diff
		}
	}
	d.configReg = (d.configReg &^ (0x7 << cfgAvgShift)) | uint16(best)<<cfgAvgShift
}

// Updates returns how many register latches have occurred.
func (d *Device) Updates() uint64 { return d.updates }

// Step implements sim.Steppable: integrate the analog inputs and latch
// the registers when the update window closes.
func (d *Device) Step(now, dt time.Duration) {
	vShunt := d.probe.CurrentAmps() * d.shuntOhms
	vBus := d.probe.BusVolts()
	if d.nShunt > 0 {
		vShunt += d.rng.NormFloat64() * d.nShunt
	}
	if d.nBus > 0 {
		vBus += d.rng.NormFloat64() * d.nBus
	}
	if dt != d.lastDt {
		d.lastDt, d.lastSec = dt, dt.Seconds()
	}
	sec := d.lastSec
	d.accShunt += vShunt * sec
	d.accBus += vBus * sec
	d.accTime += dt
	if d.accTime >= d.interval {
		d.latch()
	}
}

// latch converts the averaged analog inputs to register values using the
// datasheet pipeline and resets the integration window.
func (d *Device) latch() {
	window := d.accTime.Seconds()
	meanShunt := d.accShunt / window
	meanBus := d.accBus / window
	d.accShunt, d.accBus, d.accTime = 0, 0, 0

	if d.faults.SkipLatch != nil && d.faults.SkipLatch() {
		// Stale-latch fault: the conversion result is lost; readers keep
		// seeing the previous registers and update count for another
		// whole interval.
		return
	}

	shunt := clampReg(math.Round(meanShunt / ShuntLSB))
	bus := clampReg(math.Round(meanBus / BusLSB))
	if bus < 0 {
		bus = 0 // bus ADC is unipolar
	}
	// Datasheet: Current = ShuntReg * CAL / 2048 (integer pipeline).
	current := int32(int64(shunt) * int64(d.cal) / 2048)
	// Datasheet: Power = CurrentReg * BusReg / 20000, LSB = 25*CurrentLSB.
	power := int32(int64(current) * int64(bus) / 20000)
	if power < 0 {
		power = 0
	}
	if d.faults.CorruptLatch != nil {
		// The LatchedRegs value is built (and escapes to the heap) only
		// when a corrupt-latch hook is installed; the fault-free tick
		// path stays allocation-free.
		regs := LatchedRegs{Shunt: shunt, Bus: bus, Current: current, Power: power}
		d.faults.CorruptLatch(&regs)
		shunt, bus, current, power = regs.Shunt, regs.Bus, regs.Current, regs.Power
	}
	d.shuntReg, d.busReg, d.currentReg, d.powerReg = shunt, bus, current, power
	d.updates++
	obsConversions.Inc()
	d.evaluateAlert()
}

func clampReg(v float64) int32 {
	if v > math.MaxInt16 {
		return math.MaxInt16
	}
	if v < math.MinInt16 {
		return math.MinInt16
	}
	return int32(v)
}

// Readings is a snapshot of the latched measurements in physical units.
type Readings struct {
	// CurrentAmps at CurrentLSB resolution.
	CurrentAmps float64
	// BusVolts at 1.25 mV resolution.
	BusVolts float64
	// PowerWatts at 25×CurrentLSB resolution.
	PowerWatts float64
	// Updates is the latch counter at snapshot time; two reads with the
	// same counter saw the same register contents.
	Updates uint64
}

// Read returns the currently latched measurements.
func (d *Device) Read() Readings {
	obsRegisterReads.Inc()
	return Readings{
		CurrentAmps: float64(d.currentReg) * d.currentLSB,
		BusVolts:    float64(d.busReg) * BusLSB,
		PowerWatts:  float64(d.powerReg) * d.PowerLSB(),
		Updates:     d.updates,
	}
}

// RegShunt returns the raw shunt-voltage register.
func (d *Device) RegShunt() int32 { return d.shuntReg }

// RegBus returns the raw bus-voltage register.
func (d *Device) RegBus() int32 { return d.busReg }

// RegCurrent returns the raw current register.
func (d *Device) RegCurrent() int32 { return d.currentReg }

// RegPower returns the raw power register.
func (d *Device) RegPower() int32 { return d.powerReg }
