package ina226

import (
	"testing"
	"time"
)

func TestSkipLatchKeepsRegistersStale(t *testing.T) {
	d := newDev(t, 2, 0.85)
	run(d, 40*time.Millisecond) // first latch
	if d.Updates() != 1 {
		t.Fatalf("updates = %d after one interval, want 1", d.Updates())
	}
	before := d.Read()

	// Raise the analog input but skip every latch: registers and update
	// counter must not move.
	d.probe.CurrentAmps = func() float64 { return 4 }
	skips := 0
	d.SetFaults(FaultHooks{SkipLatch: func() bool { skips++; return true }})
	run(d, 80*time.Millisecond)
	if skips == 0 {
		t.Fatal("SkipLatch never consulted")
	}
	after := d.Read()
	if after.Updates != before.Updates || after.CurrentAmps != before.CurrentAmps {
		t.Fatalf("registers moved under skipped latches: %+v -> %+v", before, after)
	}

	// Clearing the hooks lets the next latch catch up to the new input.
	d.SetFaults(FaultHooks{})
	run(d, 40*time.Millisecond)
	final := d.Read()
	if final.Updates <= after.Updates {
		t.Fatal("updates did not resume after clearing the fault")
	}
	if final.CurrentAmps <= before.CurrentAmps {
		t.Fatalf("current still stale after recovery: %v", final.CurrentAmps)
	}
}

func TestCorruptLatchMutatesOneRegister(t *testing.T) {
	clean := newDev(t, 2, 0.85)
	run(clean, 40*time.Millisecond)

	dirty := newDev(t, 2, 0.85)
	dirty.SetFaults(FaultHooks{CorruptLatch: func(regs *LatchedRegs) {
		regs.Current ^= 1 << 9
	}})
	run(dirty, 40*time.Millisecond)

	if clean.RegCurrent() == dirty.RegCurrent() {
		t.Fatal("corrupted latch equals the clean one")
	}
	if got, want := dirty.RegCurrent(), clean.RegCurrent()^(1<<9); got != want {
		t.Fatalf("current reg = %d, want %d (bit 9 flipped)", got, want)
	}
	// The corruption happens at the latch: the next clean latch heals it.
	dirty.SetFaults(FaultHooks{})
	run(dirty, 40*time.Millisecond)
	if clean.RegCurrent() != dirty.RegCurrent() {
		t.Fatal("corruption survived a clean latch")
	}
}
