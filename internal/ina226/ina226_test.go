package ina226

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// fixedProbe returns a probe reading constant values.
func fixedProbe(amps, volts float64) Probe {
	return Probe{
		CurrentAmps: func() float64 { return amps },
		BusVolts:    func() float64 { return volts },
	}
}

func newDev(t *testing.T, amps, volts float64) *Device {
	t.Helper()
	d, err := New(Config{
		Label:      "ina226_u79",
		ShuntOhms:  0.002,
		CurrentLSB: 1e-3,
		Probe:      fixedProbe(amps, volts),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

// run advances the device by d of simulated time at a 100us step.
func run(dev *Device, d time.Duration) {
	const dt = 100 * time.Microsecond
	for now := time.Duration(0); now < d; now += dt {
		dev.Step(now, dt)
	}
}

func TestNewValidation(t *testing.T) {
	good := Config{Label: "x", ShuntOhms: 0.002, CurrentLSB: 1e-3, Probe: fixedProbe(1, 1)}
	cases := []func(Config) Config{
		func(c Config) Config { c.Label = ""; return c },
		func(c Config) Config { c.ShuntOhms = 0; return c },
		func(c Config) Config { c.CurrentLSB = 0; return c },
		func(c Config) Config { c.Probe.CurrentAmps = nil; return c },
		func(c Config) Config { c.Probe.BusVolts = nil; return c },
		func(c Config) Config { c.NoiseShuntVolts = 1e-6; return c }, // noise without rng
		func(c Config) Config { c.NoiseShuntVolts = -1; c.Rand = rand.New(rand.NewSource(1)); return c },
		func(c Config) Config { c.UpdateInterval = time.Millisecond; return c },      // < 2ms
		func(c Config) Config { c.UpdateInterval = 50 * time.Millisecond; return c }, // > 35ms
		func(c Config) Config { c.ShuntOhms = 1000; return c },                       // cal register underflow
	}
	for i, mutate := range cases {
		if _, err := New(mutate(good)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCalibrationRegister(t *testing.T) {
	d := newDev(t, 0, 0)
	// CAL = 0.00512/(1e-3 * 0.002) = 2560
	if d.Calibration() != 2560 {
		t.Fatalf("Calibration = %d, want 2560", d.Calibration())
	}
	if d.CurrentLSB() != 1e-3 {
		t.Fatalf("CurrentLSB = %v", d.CurrentLSB())
	}
	if d.PowerLSB() != 25e-3 {
		t.Fatalf("PowerLSB = %v, want 25mW", d.PowerLSB())
	}
	if d.ShuntOhms() != 0.002 {
		t.Fatalf("ShuntOhms = %v", d.ShuntOhms())
	}
	if d.Label() != "ina226_u79" {
		t.Fatalf("Label = %q", d.Label())
	}
}

func TestDefaultUpdateInterval(t *testing.T) {
	d := newDev(t, 0, 0)
	if d.UpdateInterval() != 35*time.Millisecond {
		t.Fatalf("default interval = %v, want 35ms", d.UpdateInterval())
	}
}

func TestSetUpdateInterval(t *testing.T) {
	d := newDev(t, 0, 0)
	if err := d.SetUpdateInterval(2 * time.Millisecond); err != nil {
		t.Fatalf("SetUpdateInterval(2ms): %v", err)
	}
	if d.UpdateInterval() != 2*time.Millisecond {
		t.Fatal("interval not applied")
	}
	if err := d.SetUpdateInterval(time.Millisecond); err == nil {
		t.Fatal("1ms accepted")
	}
	if err := d.SetUpdateInterval(36 * time.Millisecond); err == nil {
		t.Fatal("36ms accepted")
	}
}

func TestRegistersZeroBeforeFirstLatch(t *testing.T) {
	d := newDev(t, 6, 0.85)
	r := d.Read()
	if r.CurrentAmps != 0 || r.BusVolts != 0 || r.PowerWatts != 0 || r.Updates != 0 {
		t.Fatalf("pre-latch read = %+v", r)
	}
	// One step is far less than 35ms; still nothing latched.
	d.Step(0, 100*time.Microsecond)
	if d.Updates() != 0 {
		t.Fatal("latched too early")
	}
}

func TestDatasheetPipeline(t *testing.T) {
	// 6 A through 2 mΩ = 12 mV shunt; 0.85 V bus.
	d := newDev(t, 6, 0.85)
	run(d, 35*time.Millisecond)
	if d.Updates() != 1 {
		t.Fatalf("Updates = %d, want 1", d.Updates())
	}
	if d.RegShunt() != 4800 { // 12mV / 2.5uV
		t.Fatalf("RegShunt = %d, want 4800", d.RegShunt())
	}
	if d.RegBus() != 680 { // 0.85 / 1.25mV
		t.Fatalf("RegBus = %d, want 680", d.RegBus())
	}
	if d.RegCurrent() != 6000 { // 4800*2560/2048
		t.Fatalf("RegCurrent = %d, want 6000", d.RegCurrent())
	}
	if d.RegPower() != 204 { // 6000*680/20000
		t.Fatalf("RegPower = %d, want 204", d.RegPower())
	}
	r := d.Read()
	if math.Abs(r.CurrentAmps-6.0) > 1e-9 {
		t.Fatalf("CurrentAmps = %v, want 6.0", r.CurrentAmps)
	}
	if math.Abs(r.BusVolts-0.85) > 1e-9 {
		t.Fatalf("BusVolts = %v, want 0.85", r.BusVolts)
	}
	if math.Abs(r.PowerWatts-5.1) > 1e-9 {
		t.Fatalf("PowerWatts = %v, want 5.1", r.PowerWatts)
	}
}

func TestQuantizationToLSBs(t *testing.T) {
	// 1.2345 A should quantize to whole mA; bus of 0.8507 V to 1.25 mV.
	d := newDev(t, 1.2345, 0.8507)
	run(d, 35*time.Millisecond)
	r := d.Read()
	gotMA := r.CurrentAmps * 1000
	if math.Abs(gotMA-math.Round(gotMA)) > 1e-9 {
		t.Fatalf("current %v A not on 1 mA grid", r.CurrentAmps)
	}
	steps := r.BusVolts / BusLSB
	if math.Abs(steps-math.Round(steps)) > 1e-6 {
		t.Fatalf("bus %v V not on 1.25 mV grid", r.BusVolts)
	}
	stepsP := r.PowerWatts / d.PowerLSB()
	if math.Abs(stepsP-math.Round(stepsP)) > 1e-6 {
		t.Fatalf("power %v W not on 25 mW grid", r.PowerWatts)
	}
}

func TestRegistersHoldBetweenUpdates(t *testing.T) {
	amps := 3.0
	probe := Probe{
		CurrentAmps: func() float64 { return amps },
		BusVolts:    func() float64 { return 0.85 },
	}
	d, err := New(Config{Label: "x", ShuntOhms: 0.002, CurrentLSB: 1e-3, Probe: probe})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	run(d, 35*time.Millisecond)
	first := d.Read()
	amps = 9.0 // step change mid-window
	run(d, 10*time.Millisecond)
	if got := d.Read(); got != first {
		t.Fatalf("registers changed mid-window: %+v -> %+v", first, got)
	}
	run(d, 25*time.Millisecond) // complete the second window
	second := d.Read()
	if second.Updates != 2 {
		t.Fatalf("Updates = %d, want 2", second.Updates)
	}
	if second.CurrentAmps <= first.CurrentAmps {
		t.Fatal("step change not reflected after latch")
	}
}

func TestWindowAveraging(t *testing.T) {
	// Current alternates 0/8 A every tick: the latched value must be the
	// window mean (~4 A), not either extreme.
	flip := false
	probe := Probe{
		CurrentAmps: func() float64 {
			flip = !flip
			if flip {
				return 8
			}
			return 0
		},
		BusVolts: func() float64 { return 0.85 },
	}
	d, err := New(Config{Label: "x", ShuntOhms: 0.002, CurrentLSB: 1e-3, Probe: probe})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	run(d, 35*time.Millisecond)
	r := d.Read()
	if math.Abs(r.CurrentAmps-4.0) > 0.05 {
		t.Fatalf("averaged current = %v, want ~4.0", r.CurrentAmps)
	}
}

func TestFasterIntervalLatchesMoreOften(t *testing.T) {
	d := newDev(t, 1, 0.85)
	if err := d.SetUpdateInterval(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	run(d, 70*time.Millisecond)
	if d.Updates() != 35 {
		t.Fatalf("Updates = %d, want 35 at 2ms over 70ms", d.Updates())
	}
}

func TestNegativeBusClampsToZero(t *testing.T) {
	d, err := New(Config{Label: "x", ShuntOhms: 0.002, CurrentLSB: 1e-3,
		Probe: fixedProbe(1, -0.5)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	run(d, 35*time.Millisecond)
	if d.RegBus() != 0 {
		t.Fatalf("RegBus = %d, want 0 for negative bus", d.RegBus())
	}
	if d.Read().PowerWatts != 0 {
		t.Fatal("power should be zero with zero bus")
	}
}

func TestShuntRegisterSaturates(t *testing.T) {
	// 100 A * 2 mΩ = 200 mV >> 81.9 mV full scale; register must clamp.
	d := newDev(t, 100, 0.85)
	run(d, 35*time.Millisecond)
	if d.RegShunt() != math.MaxInt16 {
		t.Fatalf("RegShunt = %d, want saturation at %d", d.RegShunt(), math.MaxInt16)
	}
}

func TestNoiseAveragesOut(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d, err := New(Config{
		Label: "x", ShuntOhms: 0.002, CurrentLSB: 1e-3,
		Probe:           fixedProbe(5, 0.85),
		NoiseShuntVolts: 20e-6, // 8 raw LSBs of analog noise
		Rand:            rng,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	run(d, 35*time.Millisecond)
	r := d.Read()
	// 350 averaged samples shrink sigma ~19x; the latch should be within
	// a couple of mA of truth.
	if math.Abs(r.CurrentAmps-5.0) > 0.005 {
		t.Fatalf("noisy current = %v, want ~5.0", r.CurrentAmps)
	}
}

// Property: for in-range DC inputs the full pipeline recovers the input
// to within one current LSB plus shunt-quantization error.
func TestPipelineAccuracyProperty(t *testing.T) {
	f := func(ma uint16) bool {
		amps := float64(ma%30000) / 1000 // 0..30 A, inside 40.96 A full scale at 2 mΩ
		d, err := New(Config{Label: "p", ShuntOhms: 0.002, CurrentLSB: 1e-3,
			Probe: fixedProbe(amps, 0.85)})
		if err != nil {
			return false
		}
		run(d, 35*time.Millisecond)
		return math.Abs(d.Read().CurrentAmps-amps) <= 2e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: power register never exceeds current*bus/20000 pipeline value
// computed in floating point by more than rounding.
func TestPowerConsistencyProperty(t *testing.T) {
	f := func(ma uint16, mv uint16) bool {
		amps := float64(ma%20000) / 1000
		volts := 0.7 + float64(mv%200)/1000 // 0.7..0.9 V
		d, err := New(Config{Label: "p", ShuntOhms: 0.002, CurrentLSB: 1e-3,
			Probe: fixedProbe(amps, volts)})
		if err != nil {
			return false
		}
		run(d, 35*time.Millisecond)
		r := d.Read()
		truth := amps * volts
		// Power is truncated to 25 mW steps; allow one step plus the
		// current/bus quantization slack.
		return r.PowerWatts <= truth+0.05 && r.PowerWatts >= truth-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
