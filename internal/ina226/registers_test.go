package ina226

import (
	"math"
	"testing"
	"time"
)

func runDev(d *Device, dur time.Duration) {
	const dt = 100 * time.Microsecond
	for now := time.Duration(0); now < dur; now += dt {
		d.Step(now, dt)
	}
}

func TestIdentityRegisters(t *testing.T) {
	d := newDev(t, 1, 0.85)
	manuf, err := d.ReadRegister(RegManufacturerID)
	if err != nil || manuf != 0x5449 {
		t.Fatalf("manufacturer = %#x, %v (want 0x5449 'TI')", manuf, err)
	}
	die, err := d.ReadRegister(RegDieID)
	if err != nil || die != 0x2260 {
		t.Fatalf("die = %#x, %v (want 0x2260)", die, err)
	}
	// Identity registers reject writes.
	if err := d.WriteRegister(RegManufacturerID, 0); err == nil {
		t.Fatal("manufacturer ID writable")
	}
}

func TestMeasurementRegistersMatchAccessors(t *testing.T) {
	d := newDev(t, 6, 0.85)
	runDev(d, 35*time.Millisecond)
	cases := []struct {
		reg  Register
		want int32
	}{
		{RegShuntVoltage, d.RegShunt()},
		{RegBusVoltage, d.RegBus()},
		{RegCurrent, d.RegCurrent()},
		{RegPower, d.RegPower()},
	}
	for _, c := range cases {
		v, err := d.ReadRegister(c.reg)
		if err != nil {
			t.Fatalf("read %#x: %v", c.reg, err)
		}
		if int32(int16(v)) != c.want && int32(v) != c.want {
			t.Errorf("register %#x = %d, accessor = %d", c.reg, v, c.want)
		}
	}
	// Measurement registers are read-only.
	for _, r := range []Register{RegShuntVoltage, RegBusVoltage, RegCurrent, RegPower} {
		if err := d.WriteRegister(r, 1); err == nil {
			t.Errorf("register %#x writable", r)
		}
	}
}

func TestUnknownRegister(t *testing.T) {
	d := newDev(t, 1, 0.85)
	if _, err := d.ReadRegister(Register(0x42)); err == nil {
		t.Fatal("unknown register read accepted")
	}
	if err := d.WriteRegister(Register(0x42), 0); err == nil {
		t.Fatal("unknown register write accepted")
	}
}

func TestCalibrationWriteRetunesCurrentLSB(t *testing.T) {
	d := newDev(t, 6, 0.85)
	// Halve CAL: current LSB doubles (coarser).
	orig, _ := d.ReadRegister(RegCalibration)
	if err := d.WriteRegister(RegCalibration, orig/2); err != nil {
		t.Fatalf("write CAL: %v", err)
	}
	if math.Abs(d.CurrentLSB()-2e-3) > 1e-9 {
		t.Fatalf("CurrentLSB = %v, want 2 mA after halving CAL", d.CurrentLSB())
	}
	runDev(d, 35*time.Millisecond)
	r := d.Read()
	// 6 A still reads ~6 A, now on a 2 mA grid.
	if math.Abs(r.CurrentAmps-6.0) > 4e-3 {
		t.Fatalf("recalibrated current = %v", r.CurrentAmps)
	}
	if err := d.WriteRegister(RegCalibration, 0); err == nil {
		t.Fatal("zero CAL accepted")
	}
}

func TestConfigWriteSetsInterval(t *testing.T) {
	d := newDev(t, 1, 0.85)
	// AVG=4 (001), VBUSCT=1.1ms (100), VSHCT=1.1ms (100), mode 7:
	// interval = 4*(1.1+1.1)ms = 8.8 ms.
	cfg := uint16(1)<<cfgAvgShift | uint16(4)<<cfgVBusShift | uint16(4)<<cfgVShShift | 0x7
	if err := d.WriteRegister(RegConfig, cfg); err != nil {
		t.Fatalf("write config: %v", err)
	}
	if got := d.UpdateInterval(); got != 8800*time.Microsecond {
		t.Fatalf("interval = %v, want 8.8ms", got)
	}
	if d.Averages() != 4 {
		t.Fatalf("Averages = %d", d.Averages())
	}
	// A tiny configuration clamps to the 2 ms hwmon floor.
	cfg = uint16(0)<<cfgAvgShift | uint16(0)<<cfgVBusShift | uint16(0)<<cfgVShShift | 0x7
	if err := d.WriteRegister(RegConfig, cfg); err != nil {
		t.Fatal(err)
	}
	if got := d.UpdateInterval(); got != MinUpdateInterval {
		t.Fatalf("interval = %v, want clamp to 2ms", got)
	}
}

func TestConfigResetBit(t *testing.T) {
	d := newDev(t, 6, 0.85)
	runDev(d, 35*time.Millisecond)
	if d.RegCurrent() == 0 {
		t.Fatal("precondition: expected a latched reading")
	}
	if err := d.WriteRegister(RegConfig, 1<<cfgResetBit); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if d.RegCurrent() != 0 || d.RegBus() != 0 {
		t.Fatal("reset did not clear measurement registers")
	}
	cfgReg, _ := d.ReadRegister(RegConfig)
	if cfgReg != cfgDefault {
		t.Fatalf("config after reset = %#x, want %#x", cfgReg, cfgDefault)
	}
}

func TestSetUpdateIntervalUpdatesAvgBits(t *testing.T) {
	d := newDev(t, 1, 0.85)
	if err := d.SetUpdateInterval(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// 2 ms at 2.2 ms/conversion-pair: AVG=1 is nearest.
	if d.Averages() != 1 {
		t.Fatalf("Averages = %d, want 1", d.Averages())
	}
	if err := d.SetUpdateInterval(35 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// 35 ms / 2.2 ms = 15.9: AVG=16 is nearest.
	if d.Averages() != 16 {
		t.Fatalf("Averages = %d, want 16", d.Averages())
	}
}

func TestAlertShuntOverLimit(t *testing.T) {
	d := newDev(t, 6, 0.85) // 6 A
	limit := d.ShuntLimitFromAmps(5.0)
	if err := d.WriteRegister(RegAlertLimit, limit); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRegister(RegMaskEnable, AlertShuntOver); err != nil {
		t.Fatal(err)
	}
	if d.Alert() {
		t.Fatal("alert before any conversion")
	}
	runDev(d, 35*time.Millisecond)
	if !d.Alert() {
		t.Fatal("6 A did not trip a 5 A over-current alert")
	}
	me, _ := d.ReadRegister(RegMaskEnable)
	if me&AlertFunctionFlag == 0 {
		t.Fatal("AFF not visible in mask/enable register")
	}
}

func TestAlertClearsWhenConditionGone(t *testing.T) {
	amps := 6.0
	probe := Probe{
		CurrentAmps: func() float64 { return amps },
		BusVolts:    func() float64 { return 0.85 },
	}
	d, err := New(Config{Label: "x", ShuntOhms: 0.002, CurrentLSB: 1e-3, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRegister(RegAlertLimit, d.ShuntLimitFromAmps(5)); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRegister(RegMaskEnable, AlertShuntOver); err != nil {
		t.Fatal(err)
	}
	runDev(d, 35*time.Millisecond)
	if !d.Alert() {
		t.Fatal("alert did not fire")
	}
	amps = 1.0
	runDev(d, 35*time.Millisecond)
	if d.Alert() {
		t.Fatal("alert stuck after condition cleared")
	}
}

func TestAlertBusUnderLimit(t *testing.T) {
	d := newDev(t, 1, 0.70) // bus at 0.70 V
	// Limit: 0.80 V in 1.25 mV LSBs = 640.
	if err := d.WriteRegister(RegAlertLimit, 640); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRegister(RegMaskEnable, AlertBusUnder); err != nil {
		t.Fatal(err)
	}
	runDev(d, 35*time.Millisecond)
	if !d.Alert() {
		t.Fatal("under-voltage alert did not fire")
	}
}

func TestAlertPowerOverLimit(t *testing.T) {
	d := newDev(t, 6, 0.85) // ~5.1 W -> power reg 204
	if err := d.WriteRegister(RegAlertLimit, 100); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRegister(RegMaskEnable, AlertPowerOver); err != nil {
		t.Fatal(err)
	}
	runDev(d, 35*time.Millisecond)
	if !d.Alert() {
		t.Fatal("power-over-limit alert did not fire")
	}
}

func TestNoAlertFunctionSelected(t *testing.T) {
	d := newDev(t, 6, 0.85)
	runDev(d, 35*time.Millisecond)
	if d.Alert() {
		t.Fatal("alert with no function selected")
	}
}
