package ina226

import (
	"testing"
	"time"
)

// fuzzDevice wires a minimal valid device for register fuzzing.
func fuzzDevice(t interface{ Fatal(args ...any) }) *Device {
	d, err := New(Config{Label: "fuzz", ShuntOhms: 0.002, CurrentLSB: 1e-3, Probe: fixedProbe(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// FuzzRegisterRoundTrip drives arbitrary register writes followed by
// reads and checks the datasheet invariants hold for every input: reads
// never panic, writable registers round-trip (modulo documented masking),
// read-only and unknown registers reject writes, and the derived update
// interval stays inside the hwmon driver's window.
func FuzzRegisterRoundTrip(f *testing.F) {
	f.Add(uint8(RegConfig), uint16(cfgDefault))
	f.Add(uint8(RegConfig), uint16(1<<cfgResetBit))
	f.Add(uint8(RegCalibration), uint16(0))
	f.Add(uint8(RegCalibration), uint16(2560))
	f.Add(uint8(RegMaskEnable), AlertShuntOver|AlertFunctionFlag)
	f.Add(uint8(RegAlertLimit), uint16(0xFFFF))
	f.Add(uint8(RegCurrent), uint16(42))
	f.Add(uint8(0xAB), uint16(7))
	f.Fuzz(func(t *testing.T, regByte uint8, value uint16) {
		d := fuzzDevice(t)
		reg := Register(regByte)
		err := d.WriteRegister(reg, value)
		switch reg {
		case RegConfig:
			if err != nil {
				t.Fatalf("config write rejected: %v", err)
			}
			got, rerr := d.ReadRegister(reg)
			if rerr != nil {
				t.Fatalf("config read: %v", rerr)
			}
			if value&(1<<cfgResetBit) != 0 {
				// Reset restores the power-on value; the RST bit self-clears.
				if got != cfgDefault {
					t.Fatalf("after reset config = %#04x, want %#04x", got, cfgDefault)
				}
			} else if got != value {
				t.Fatalf("config round-trip = %#04x, want %#04x", got, value)
			}
		case RegCalibration:
			if value == 0 {
				if err == nil {
					t.Fatal("zero calibration accepted")
				}
			} else {
				if err != nil {
					t.Fatalf("calibration write rejected: %v", err)
				}
				got, rerr := d.ReadRegister(reg)
				if rerr != nil || got != value {
					t.Fatalf("calibration round-trip = %#04x (%v), want %#04x", got, rerr, value)
				}
			}
		case RegMaskEnable:
			if err != nil {
				t.Fatalf("mask/enable write rejected: %v", err)
			}
			got, rerr := d.ReadRegister(reg)
			if rerr != nil {
				t.Fatalf("mask/enable read: %v", rerr)
			}
			if want := value &^ AlertFunctionFlag; got != want {
				t.Fatalf("mask/enable round-trip = %#04x, want %#04x (AFF is read-only)", got, want)
			}
		case RegAlertLimit:
			if err != nil {
				t.Fatalf("alert-limit write rejected: %v", err)
			}
			got, rerr := d.ReadRegister(reg)
			if rerr != nil || got != value {
				t.Fatalf("alert-limit round-trip = %#04x (%v), want %#04x", got, rerr, value)
			}
		case RegShuntVoltage, RegBusVoltage, RegPower, RegCurrent,
			RegManufacturerID, RegDieID:
			if err == nil {
				t.Fatalf("write accepted on read-only register %#02x", regByte)
			}
		default:
			if err == nil {
				t.Fatalf("write accepted on unknown register %#02x", regByte)
			}
			if _, rerr := d.ReadRegister(reg); rerr == nil {
				t.Fatalf("read succeeded on unknown register %#02x", regByte)
			}
		}
		// Whatever the write did, the device must stay inside the hwmon
		// driver's interval window with a valid averaging count.
		if iv := d.UpdateInterval(); iv < MinUpdateInterval || iv > MaxUpdateInterval {
			t.Fatalf("update interval %v escaped [%v,%v]", iv, MinUpdateInterval, MaxUpdateInterval)
		}
		if avg := d.Averages(); avg < 1 || avg > 1024 {
			t.Fatalf("averaging count %d out of range", avg)
		}
	})
}

// FuzzSetUpdateInterval checks the hwmon-style interval setter clamps or
// rejects every requested duration without corrupting the config
// register encoding.
func FuzzSetUpdateInterval(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(MinUpdateInterval))
	f.Add(int64(MaxUpdateInterval))
	f.Add(int64(-time.Millisecond))
	f.Add(int64(time.Hour))
	f.Add(int64(17 * time.Millisecond))
	f.Fuzz(func(t *testing.T, ns int64) {
		d := fuzzDevice(t)
		err := d.SetUpdateInterval(time.Duration(ns))
		iv := d.UpdateInterval()
		if iv < MinUpdateInterval || iv > MaxUpdateInterval {
			t.Fatalf("SetUpdateInterval(%v) err=%v left interval %v outside [%v,%v]",
				time.Duration(ns), err, iv, MinUpdateInterval, MaxUpdateInterval)
		}
		// Re-writing the config register the device reports re-derives the
		// interval from the AVG encoding (quantized, so it may move once),
		// but the encoding must be a fixed point: a second round-trip may
		// not move it again, and it must stay in the window.
		roundTrip := func() time.Duration {
			cfgReg, rerr := d.ReadRegister(RegConfig)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if werr := d.WriteRegister(RegConfig, cfgReg); werr != nil {
				t.Fatal(werr)
			}
			return d.UpdateInterval()
		}
		quantized := roundTrip()
		if quantized < MinUpdateInterval || quantized > MaxUpdateInterval {
			t.Fatalf("quantized interval %v escaped the window", quantized)
		}
		if again := roundTrip(); again != quantized {
			t.Fatalf("config encoding not a fixed point: %v -> %v", quantized, again)
		}
	})
}
