package ina226

import (
	"fmt"
	"math"
	"time"
)

// Register is an INA226 register pointer (datasheet Table 3).
type Register uint8

// The device's register map.
const (
	RegConfig         Register = 0x00
	RegShuntVoltage   Register = 0x01
	RegBusVoltage     Register = 0x02
	RegPower          Register = 0x03
	RegCurrent        Register = 0x04
	RegCalibration    Register = 0x05
	RegMaskEnable     Register = 0x06
	RegAlertLimit     Register = 0x07
	RegManufacturerID Register = 0xFE
	RegDieID          Register = 0xFF
)

// Identification constants (datasheet sections 7.6.8/7.6.9).
const (
	// ManufacturerID is "TI" in ASCII.
	ManufacturerID = 0x5449
	// DieID identifies the INA226 die.
	DieID = 0x2260
)

// Configuration register fields (datasheet 7.6.1).
const (
	cfgResetBit  = 15
	cfgAvgShift  = 9 // AVG[2:0]
	cfgVBusShift = 6 // VBUSCT[2:0]
	cfgVShShift  = 3 // VSHCT[2:0]
	cfgModeMask  = 0x7
	// cfgDefault is the power-on value: 1 average, 1.1 ms conversions,
	// continuous shunt+bus mode.
	cfgDefault = 0x4127
)

// avgCounts maps AVG[2:0] to the averaging count.
var avgCounts = []int{1, 4, 16, 64, 128, 256, 512, 1024}

// convTimes maps VBUSCT/VSHCT[2:0] to the per-conversion time.
var convTimes = []time.Duration{
	140 * time.Microsecond, 204 * time.Microsecond, 332 * time.Microsecond,
	588 * time.Microsecond, 1100 * time.Microsecond, 2116 * time.Microsecond,
	4156 * time.Microsecond, 8244 * time.Microsecond,
}

// Mask/Enable register bits (datasheet 7.6.7).
const (
	// AlertShuntOver triggers on shunt voltage over the limit.
	AlertShuntOver uint16 = 1 << 15
	// AlertShuntUnder triggers on shunt voltage under the limit.
	AlertShuntUnder uint16 = 1 << 14
	// AlertBusOver triggers on bus voltage over the limit.
	AlertBusOver uint16 = 1 << 13
	// AlertBusUnder triggers on bus voltage under the limit.
	AlertBusUnder uint16 = 1 << 12
	// AlertPowerOver triggers on the power register over the limit.
	AlertPowerOver uint16 = 1 << 11
	// AlertFunctionFlag is set by the device when the selected alert
	// condition was met at the last conversion.
	AlertFunctionFlag uint16 = 1 << 4
)

// ReadRegister reads a register over the (simulated) I2C interface.
func (d *Device) ReadRegister(r Register) (uint16, error) {
	switch r {
	case RegConfig:
		return d.configReg, nil
	case RegShuntVoltage:
		return uint16(int16(d.shuntReg)), nil
	case RegBusVoltage:
		return uint16(int16(d.busReg)), nil
	case RegPower:
		return uint16(d.powerReg), nil
	case RegCurrent:
		return uint16(int16(d.currentReg)), nil
	case RegCalibration:
		return d.cal, nil
	case RegMaskEnable:
		return d.maskEnable, nil
	case RegAlertLimit:
		return d.alertLimit, nil
	case RegManufacturerID:
		return ManufacturerID, nil
	case RegDieID:
		return DieID, nil
	default:
		return 0, fmt.Errorf("ina226 %s: read of unknown register 0x%02X", d.label, uint8(r))
	}
}

// WriteRegister writes a register over the (simulated) I2C interface.
// Only the writable registers of the real device accept writes.
func (d *Device) WriteRegister(r Register, v uint16) error {
	switch r {
	case RegConfig:
		if v&(1<<cfgResetBit) != 0 {
			d.reset()
			return nil
		}
		d.configReg = v
		d.applyConfig()
		return nil
	case RegCalibration:
		if v == 0 {
			return fmt.Errorf("ina226 %s: zero calibration", d.label)
		}
		d.cal = v
		// CAL = 0.00512/(CurrentLSB*Rshunt)  =>  CurrentLSB follows CAL.
		d.currentLSB = 0.00512 / (float64(v) * d.shuntOhms)
		return nil
	case RegMaskEnable:
		// The alert-function flag is read-only; writes clear it.
		d.maskEnable = v &^ AlertFunctionFlag
		return nil
	case RegAlertLimit:
		d.alertLimit = v
		return nil
	case RegShuntVoltage, RegBusVoltage, RegPower, RegCurrent,
		RegManufacturerID, RegDieID:
		return fmt.Errorf("ina226 %s: register 0x%02X is read-only", d.label, uint8(r))
	default:
		return fmt.Errorf("ina226 %s: write to unknown register 0x%02X", d.label, uint8(r))
	}
}

// reset restores the power-on state (datasheet RST bit behaviour).
func (d *Device) reset() {
	d.configReg = cfgDefault
	d.maskEnable = 0
	d.alertLimit = 0
	d.shuntReg, d.busReg, d.currentReg, d.powerReg = 0, 0, 0, 0
	d.accShunt, d.accBus, d.accTime = 0, 0, 0
	d.applyConfig()
}

// applyConfig derives the effective conversion interval from the
// averaging count and conversion times, clamped to the hwmon driver's
// [2 ms, 35 ms] update window (the range the paper reports).
func (d *Device) applyConfig() {
	avg := avgCounts[(d.configReg>>cfgAvgShift)&0x7]
	ctBus := convTimes[(d.configReg>>cfgVBusShift)&0x7]
	ctShunt := convTimes[(d.configReg>>cfgVShShift)&0x7]
	interval := time.Duration(avg) * (ctBus + ctShunt)
	if interval < MinUpdateInterval {
		interval = MinUpdateInterval
	}
	if interval > MaxUpdateInterval {
		interval = MaxUpdateInterval
	}
	d.interval = interval
}

// Averages returns the configured averaging count.
func (d *Device) Averages() int {
	return avgCounts[(d.configReg>>cfgAvgShift)&0x7]
}

// evaluateAlert updates the alert-function flag after a latch.
func (d *Device) evaluateAlert() {
	limit := d.alertLimit
	var fire bool
	switch {
	case d.maskEnable&AlertShuntOver != 0:
		fire = d.shuntReg > int32(int16(limit))
	case d.maskEnable&AlertShuntUnder != 0:
		fire = d.shuntReg < int32(int16(limit))
	case d.maskEnable&AlertBusOver != 0:
		fire = d.busReg > int32(limit)
	case d.maskEnable&AlertBusUnder != 0:
		fire = d.busReg < int32(limit)
	case d.maskEnable&AlertPowerOver != 0:
		fire = d.powerReg > int32(limit)
	default:
		d.maskEnable &^= AlertFunctionFlag
		return
	}
	if fire {
		d.maskEnable |= AlertFunctionFlag
	} else {
		d.maskEnable &^= AlertFunctionFlag
	}
}

// Alert reports whether the alert function fired at the last latch.
func (d *Device) Alert() bool { return d.maskEnable&AlertFunctionFlag != 0 }

// ShuntLimitFromAmps converts a current bound into an alert-limit
// register value for the shunt-voltage alert functions.
func (d *Device) ShuntLimitFromAmps(amps float64) uint16 {
	return uint16(int16(math.Round(amps * d.shuntOhms / ShuntLSB)))
}
