package perf

import (
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleArtifact(ticks int64) Artifact {
	r := obs.NewRegistry()
	r.Counter("sim.ticks").Add(ticks)
	r.Counter("sim.simtime_ns").Add(2_000_000_000)
	r.Counter("sim.walltime_ns").Add(987654321) // wall-dependent: must not gate
	r.Counter("core.captures").Add(12)
	r.Histogram("attacker.sample_rate_hz").Observe(28.57)
	snap := r.Snapshot()
	a := Artifact{
		SchemaVersion: SchemaVersion,
		Experiment:    "all",
		Seed:          1,
		WallSeconds:   3.5,
		SimTicks:      ticks,
		TicksPerSec:   float64(ticks) / 3.5,
		SimWallRatio:  2.02,
		Parallel: &ParallelBench{
			Workers:             4,
			SerialTicksPerSec:   1000,
			ParallelTicksPerSec: 2500,
			Speedup:             2.5,
		},
		Obs: snap,
	}
	if h, ok := snap.Histogram("attacker.sample_rate_hz"); ok {
		a.SampleRate = h
	}
	return a
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()

	single := filepath.Join(dir, "single.json")
	if err := WriteFile(single, []Artifact{sampleArtifact(1000)}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SimTicks != 1000 {
		t.Fatalf("single round-trip: %+v", got)
	}

	multi := filepath.Join(dir, "multi.json")
	if err := WriteFile(multi, []Artifact{sampleArtifact(1000), sampleArtifact(1000)}); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadFile(multi); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("array round-trip: %d artifacts", len(got))
	}
}

func TestCompareCleanRun(t *testing.T) {
	cmp, err := Compare(
		[]Artifact{sampleArtifact(1000)},
		[]Artifact{sampleArtifact(1000)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Drift) != 0 {
		t.Fatalf("identical artifacts drifted: %+v", cmp.Drift)
	}
	if cmp.Failed() {
		t.Fatal("identical artifacts failed the gate")
	}
	if len(cmp.Rates) == 0 {
		t.Fatal("no rate rows reported")
	}
}

// The heart of the regression gate: a deterministic counter that moves
// by even one count is a behaviour change and must fail the comparison,
// no matter that every wall-clock rate is unchanged.
func TestCompareFailsOnDeterministicDrift(t *testing.T) {
	base := sampleArtifact(1000)
	drifted := sampleArtifact(1001) // one extra sim tick
	cmp, err := Compare([]Artifact{base}, []Artifact{drifted}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("deterministic counter drift did not fail the comparison")
	}
	found := false
	for _, d := range cmp.Drift {
		if d.Name == "sim.ticks" {
			found = true
		}
		if strings.Contains(d.Name, "walltime") {
			t.Fatalf("wall-clock counter %s gated as deterministic", d.Name)
		}
	}
	if !found {
		t.Fatalf("sim.ticks drift not reported: %+v", cmp.Drift)
	}
}

// A run with -history carries the recorder's lazily registered
// obs.tsdb.* self-metrics, whose sample counts follow the wall-clock
// ticker. They must stay out of the deterministic gate: a history-on
// run compared against a history-off baseline is drift-free.
func TestCompareIgnoresHistorySelfMetrics(t *testing.T) {
	base := sampleArtifact(1000)
	withHistory := sampleArtifact(1000)
	withHistory.Obs.Counters["obs.tsdb.samples"] = 37
	withHistory.Obs.Counters["obs.tsdb.evictions"] = 4
	cmp, err := Compare([]Artifact{base}, []Artifact{withHistory}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatalf("history self-metrics gated as deterministic: %+v", cmp.Drift)
	}
	for _, d := range cmp.Drift {
		if strings.HasPrefix(d.Name, "obs.tsdb.") {
			t.Fatalf("recorder bookkeeping counter %s gated as deterministic", d.Name)
		}
	}
}

func TestCompareWallClockReportOnlyByDefault(t *testing.T) {
	base := sampleArtifact(1000)
	slow := sampleArtifact(1000)
	slow.TicksPerSec /= 10
	slow.WallSeconds *= 10
	cmp, err := Compare([]Artifact{base}, []Artifact{slow}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatal("wall-clock slowdown failed a report-only comparison")
	}
	cmp, err = Compare([]Artifact{base}, []Artifact{slow}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("10x slowdown passed a 20% regression gate")
	}
	for _, r := range cmp.Rates {
		switch r.Name {
		case "ticks_per_sec":
			if !r.Regressed {
				t.Fatal("ticks_per_sec drop not flagged")
			}
		case "wall_seconds":
			if !r.Regressed {
				t.Fatal("wall_seconds growth not flagged (lower is better)")
			}
		case "sim_wall_ratio":
			if r.Regressed {
				t.Fatal("unchanged sim_wall_ratio flagged")
			}
		}
	}
}

func TestCompareRejectsMismatchedRuns(t *testing.T) {
	a := sampleArtifact(1000)
	b := sampleArtifact(1000)
	b.Experiment = "fig2"
	if _, err := Compare([]Artifact{a}, []Artifact{b}, 0); err == nil {
		t.Fatal("experiment mismatch accepted")
	}
	b = sampleArtifact(1000)
	b.Seed = 99
	if _, err := Compare([]Artifact{a}, []Artifact{b}, 0); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

func TestCompareRejectsUnstableRepeats(t *testing.T) {
	if _, err := Compare(
		[]Artifact{sampleArtifact(1000)},
		[]Artifact{sampleArtifact(1000), sampleArtifact(1002)}, 0); err == nil {
		t.Fatal("non-reproducible repeats accepted")
	}
}

func TestStats(t *testing.T) {
	s := Stats([]float64{10, 12, 14})
	if s.N != 3 || s.Mean != 12 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Stddev-2) > 1e-12 {
		t.Fatalf("stddev = %g, want 2", s.Stddev)
	}
	// t(df=2, 97.5%) = 4.303; CI = 4.303 * 2 / sqrt(3).
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(s.CI95-want) > 1e-9 {
		t.Fatalf("ci95 = %g, want %g", s.CI95, want)
	}
	if one := Stats([]float64{5}); one.N != 1 || one.Mean != 5 || one.Stddev != 0 || one.CI95 != 0 {
		t.Fatalf("single-value stats = %+v", one)
	}
}

// goldenSchema pins the artifact's top-level JSON layout: a field
// rename, removal, or addition must show up here and force a conscious
// SchemaVersion decision.
var goldenSchema = []string{
	"schema_version",
	"experiment",
	"seed",
	"wall_seconds",
	"sim_ticks",
	"ticks_per_sec",
	"sim_wall_ratio",
	"attacker_sample_rate_hz",
	"parallel",
	"spectrum",
	"obs",
}

func TestArtifactSchemaGolden(t *testing.T) {
	typ := reflect.TypeOf(Artifact{})
	var fields []string
	for i := 0; i < typ.NumField(); i++ {
		tag := typ.Field(i).Tag.Get("json")
		name := strings.Split(tag, ",")[0]
		if name == "" || name == "-" {
			t.Fatalf("field %s has no json name", typ.Field(i).Name)
		}
		fields = append(fields, name)
	}
	if !reflect.DeepEqual(fields, goldenSchema) {
		t.Fatalf("artifact schema changed:\n got  %v\n want %v\nbump SchemaVersion and update the golden list deliberately",
			fields, goldenSchema)
	}
	// The serialized form must carry the version.
	data, err := json.Marshal(sampleArtifact(10))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if v, ok := m["schema_version"].(float64); !ok || int(v) != SchemaVersion {
		t.Fatalf("schema_version = %v, want %d", m["schema_version"], SchemaVersion)
	}
}
