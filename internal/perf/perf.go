// Package perf defines the machine-readable performance artifact that
// benchtab emits (BENCH_*.json) and the benchstat-style comparison used
// to gate performance regressions in CI.
//
// An artifact splits into two kinds of content with very different
// stability guarantees:
//
//   - Deterministic metrics — the obs counters, minus anything
//     wall-clock derived. For a fixed seed and configuration these are
//     exact: the simulation executes the same ticks, captures, samples
//     and gaps on every machine and at every worker count. Any drift at
//     all means the simulation changed behaviour, so Compare treats a
//     one-count difference as a hard failure.
//   - Wall-clock rates — ticks/sec, sim/wall ratio, the serial-vs-
//     parallel sweep. These depend on the host; Compare reports them
//     with mean/stddev/95% CI across repeats and only fails when a
//     regression threshold is explicitly requested.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// SchemaVersion identifies the artifact layout. Bump it when fields
// change meaning or move; the golden-schema test pins the layout so a
// bump is a conscious act.
//
// Version history:
//
//	1 — benchtab's original unversioned artifact (no schema_version).
//	2 — schema_version field added; artifact moved to internal/perf.
//	3 — spectrum micro-benchmark section added (additive; older
//	    artifacts simply lack the "spectrum" key and its rates).
const SchemaVersion = 3

// ParallelBench compares the sharded runner against the serial path on
// the cross-board applicability sweep: the same shard set executed with
// one worker and with N, with aggregate engine throughput for each. The
// rows are bit-identical by construction (the runner derives every
// shard's seed from the campaign key, not the schedule), so the two
// runs differ only in wall clock.
type ParallelBench struct {
	// Workers of the parallel run (the -parallel flag, or GOMAXPROCS).
	Workers int `json:"workers"`
	// SerialTicksPerSec is the sweep's engine throughput at one worker.
	SerialTicksPerSec float64 `json:"serial_ticks_per_sec"`
	// ParallelTicksPerSec is the throughput at Workers workers.
	ParallelTicksPerSec float64 `json:"parallel_ticks_per_sec"`
	// Speedup is ParallelTicksPerSec / SerialTicksPerSec. On a
	// single-CPU host this hovers near 1.0; it only reflects the
	// hardware the artifact was produced on, so it is reported, never
	// asserted.
	Speedup float64 `json:"speedup"`
}

// SpectrumBench measures spectral-transform throughput at a paper-scale
// shape (a 5 s capture at the root-retuned 2 ms interval, bins up to
// Nyquist): the production FFT path against the per-bin Goertzel
// reference over the identical trace. Both are pure math on synthetic
// data — the measurement touches no simulation state, so it cannot
// perturb the deterministic counters.
type SpectrumBench struct {
	// Samples and Bins describe the benchmarked transform shape.
	Samples int `json:"samples"`
	Bins    int `json:"bins"`
	// GoertzelBinsPerSec is the reference throughput (bins/second).
	GoertzelBinsPerSec float64 `json:"goertzel_bins_per_sec"`
	// FFTBinsPerSec is the production Spectrum throughput (bins/second).
	FFTBinsPerSec float64 `json:"fft_bins_per_sec"`
	// Speedup is FFTBinsPerSec / GoertzelBinsPerSec.
	Speedup float64 `json:"speedup"`
}

// Artifact is the schema of benchtab's -json output.
type Artifact struct {
	// SchemaVersion is the artifact layout version (SchemaVersion).
	SchemaVersion int `json:"schema_version"`
	// Experiment is the -exp selector the artifact covers.
	Experiment string `json:"experiment"`
	// Seed is the root seed.
	Seed int64 `json:"seed"`
	// WallSeconds is the total wall-clock runtime.
	WallSeconds float64 `json:"wall_seconds"`
	// SimTicks is the number of engine ticks executed across all boards.
	SimTicks int64 `json:"sim_ticks"`
	// TicksPerSec is SimTicks over WallSeconds (aggregate engine
	// throughput; parallel boards push it above one engine's rate).
	TicksPerSec float64 `json:"ticks_per_sec"`
	// SimWallRatio is total simulated time over total in-engine wall
	// time: how much faster than real time the simulation ran.
	SimWallRatio float64 `json:"sim_wall_ratio"`
	// SampleRate summarizes the attacker's achieved sampling rate (Hz).
	SampleRate obs.HistogramStat `json:"attacker_sample_rate_hz"`
	// Parallel is the serial-vs-parallel cross-board sweep comparison.
	Parallel *ParallelBench `json:"parallel,omitempty"`
	// Spectrum is the FFT-vs-Goertzel spectral throughput micro-bench.
	Spectrum *SpectrumBench `json:"spectrum,omitempty"`
	// Obs is the full metrics snapshot.
	Obs obs.Snapshot `json:"obs"`
}

// WriteFile writes artifacts as indented JSON: a single object for one
// artifact (the historical BENCH_*.json shape), an array for repeats.
func WriteFile(path string, arts []Artifact) error {
	if len(arts) == 0 {
		return fmt.Errorf("perf: no artifacts to write")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	var encErr error
	if len(arts) == 1 {
		encErr = enc.Encode(arts[0])
	} else {
		encErr = enc.Encode(arts)
	}
	if encErr != nil {
		f.Close()
		return encErr
	}
	return f.Close()
}

// ReadFile reads a perf artifact file written by any benchtab version:
// a single object or an array of objects.
func ReadFile(path string) ([]Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var arts []Artifact
		if err := json.Unmarshal(data, &arts); err != nil {
			return nil, fmt.Errorf("perf: %s: %w", path, err)
		}
		if len(arts) == 0 {
			return nil, fmt.Errorf("perf: %s: empty artifact array", path)
		}
		return arts, nil
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return []Artifact{art}, nil
}

// DeterministicCounters returns the artifact's obs counters minus the
// wall-clock derived ones (anything containing "walltime") and the
// history recorder's own bookkeeping (the obs.tsdb.* self-metrics,
// whose sample counts follow the wall-clock ticker, and which only
// exist at all when the run used -history). For a fixed seed and
// configuration the remainder must be exactly equal between runs.
func (a *Artifact) DeterministicCounters() map[string]int64 {
	out := make(map[string]int64, len(a.Obs.Counters))
	for k, v := range a.Obs.Counters {
		if strings.Contains(k, "walltime") || strings.HasPrefix(k, "obs.tsdb.") {
			continue
		}
		out[k] = v
	}
	return out
}

// Rates returns the artifact's wall-clock dependent figures by name.
func (a *Artifact) Rates() map[string]float64 {
	out := map[string]float64{
		"ticks_per_sec":  a.TicksPerSec,
		"sim_wall_ratio": a.SimWallRatio,
		"wall_seconds":   a.WallSeconds,
	}
	if a.Parallel != nil {
		out["serial_ticks_per_sec"] = a.Parallel.SerialTicksPerSec
		out["parallel_ticks_per_sec"] = a.Parallel.ParallelTicksPerSec
	}
	if a.Spectrum != nil {
		out["spectrum_fft_bins_per_sec"] = a.Spectrum.FFTBinsPerSec
		out["spectrum_goertzel_bins_per_sec"] = a.Spectrum.GoertzelBinsPerSec
	}
	return out
}

// MetricStats summarizes repeated measurements of one rate metric.
type MetricStats struct {
	// N is the number of repeats.
	N int
	// Mean and Stddev of the measurements (sample stddev; zero for one
	// repeat).
	Mean, Stddev float64
	// CI95 is the half-width of the 95% confidence interval of the
	// mean (t-distribution; zero for one repeat).
	CI95 float64
}

// t-distribution 97.5% quantiles for n-1 degrees of freedom (index by
// df, capped); df >= 30 uses the normal approximation.
var t975 = []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447,
	2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
	2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
	2.060, 2.056, 2.052, 2.048, 2.045}

// Stats computes MetricStats over repeated measurements.
func Stats(values []float64) MetricStats {
	s := MetricStats{N: len(values)}
	if len(values) == 0 {
		return s
	}
	for _, v := range values {
		s.Mean += v
	}
	s.Mean /= float64(len(values))
	if len(values) < 2 {
		return s
	}
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(values)-1))
	df := len(values) - 1
	t := 1.96
	if df < len(t975) {
		t = t975[df]
	}
	s.CI95 = t * s.Stddev / math.Sqrt(float64(len(values)))
	return s
}

// Drift is one deterministic counter that differs between baseline and
// current — by definition a behaviour change, not noise.
type Drift struct {
	// Name of the counter ("(absent)" markers appear in the rendered
	// values when a side lacks it entirely).
	Name string
	// Baseline and Current rendered values.
	Baseline, Current string
}

// RateRow is one wall-clock metric compared across artifact sets.
type RateRow struct {
	// Name of the rate metric.
	Name string
	// Baseline and Current statistics across repeats.
	Baseline, Current MetricStats
	// DeltaPct is (Current.Mean - Baseline.Mean) / Baseline.Mean * 100.
	DeltaPct float64
	// Regressed reports whether the metric crossed the requested
	// regression threshold in the harmful direction.
	Regressed bool
}

// Comparison is the outcome of comparing current artifacts against a
// baseline set.
type Comparison struct {
	// Experiment and Seed shared by both sides.
	Experiment string
	Seed       int64
	// BaselineN and CurrentN are the repeat counts on each side.
	BaselineN, CurrentN int
	// Drift lists deterministic counters that differ — always failures.
	Drift []Drift
	// Rates are the wall-clock metrics, report-only unless RegressPct
	// was set.
	Rates []RateRow
	// RegressPct is the threshold the comparison gated rates on
	// (0 = report-only).
	RegressPct float64
}

// Failed reports whether the comparison should gate (non-zero exit):
// any deterministic drift, or — when a regression threshold was set —
// any rate regression beyond it.
func (c *Comparison) Failed() bool {
	if len(c.Drift) > 0 {
		return true
	}
	for _, r := range c.Rates {
		if r.Regressed {
			return true
		}
	}
	return false
}

// lowerIsBetter marks rate metrics where an increase is the regression.
var lowerIsBetter = map[string]bool{"wall_seconds": true}

// Compare builds the benchstat-style comparison between a baseline
// artifact set and the current one. Both sides must describe the same
// experiment and seed — comparing different runs is a usage error, not
// a regression. regressPct > 0 turns rate deltas beyond that percentage
// (in the harmful direction) into failures; 0 leaves rates report-only.
func Compare(baseline, current []Artifact, regressPct float64) (*Comparison, error) {
	if len(baseline) == 0 || len(current) == 0 {
		return nil, fmt.Errorf("perf: empty artifact set")
	}
	b0, c0 := baseline[0], current[0]
	if b0.Experiment != c0.Experiment {
		return nil, fmt.Errorf("perf: experiment mismatch: baseline %q vs current %q",
			b0.Experiment, c0.Experiment)
	}
	if b0.Seed != c0.Seed {
		return nil, fmt.Errorf("perf: seed mismatch: baseline %d vs current %d",
			b0.Seed, c0.Seed)
	}
	cmp := &Comparison{
		Experiment: c0.Experiment,
		Seed:       c0.Seed,
		BaselineN:  len(baseline),
		CurrentN:   len(current),
		RegressPct: regressPct,
	}

	// Deterministic gate. Counters must agree across every repeat of
	// each side (a repeat that disagrees with its siblings is itself
	// drift) and then between the sides.
	bCounters, err := stableCounters(baseline, "baseline")
	if err != nil {
		return nil, err
	}
	cCounters, err := stableCounters(current, "current")
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for k := range bCounters {
		names[k] = true
	}
	for k := range cCounters {
		names[k] = true
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		bv, okB := bCounters[k]
		cv, okC := cCounters[k]
		switch {
		case okB && !okC:
			cmp.Drift = append(cmp.Drift, Drift{Name: k, Baseline: fmt.Sprintf("%d", bv), Current: "(absent)"})
		case !okB && okC:
			cmp.Drift = append(cmp.Drift, Drift{Name: k, Baseline: "(absent)", Current: fmt.Sprintf("%d", cv)})
		case bv != cv:
			cmp.Drift = append(cmp.Drift, Drift{Name: k, Baseline: fmt.Sprintf("%d", bv), Current: fmt.Sprintf("%d", cv)})
		}
	}

	// Wall-clock rates: stats across repeats, threshold-gated only on
	// request.
	rateNames := map[string]bool{}
	for _, a := range baseline {
		for k := range a.Rates() {
			rateNames[k] = true
		}
	}
	for _, a := range current {
		for k := range a.Rates() {
			rateNames[k] = true
		}
	}
	sortedRates := make([]string, 0, len(rateNames))
	for k := range rateNames {
		sortedRates = append(sortedRates, k)
	}
	sort.Strings(sortedRates)
	collect := func(arts []Artifact, name string) []float64 {
		var vs []float64
		for _, a := range arts {
			if v, ok := a.Rates()[name]; ok {
				vs = append(vs, v)
			}
		}
		return vs
	}
	for _, name := range sortedRates {
		row := RateRow{
			Name:     name,
			Baseline: Stats(collect(baseline, name)),
			Current:  Stats(collect(current, name)),
		}
		if row.Baseline.Mean != 0 {
			row.DeltaPct = (row.Current.Mean - row.Baseline.Mean) / row.Baseline.Mean * 100
		}
		if regressPct > 0 && row.Baseline.N > 0 && row.Current.N > 0 {
			if lowerIsBetter[name] {
				row.Regressed = row.DeltaPct > regressPct
			} else {
				row.Regressed = row.DeltaPct < -regressPct
			}
		}
		cmp.Rates = append(cmp.Rates, row)
	}
	return cmp, nil
}

// stableCounters returns the deterministic counters shared by every
// repeat in the set, erroring when repeats disagree with each other.
func stableCounters(arts []Artifact, side string) (map[string]int64, error) {
	ref := arts[0].DeterministicCounters()
	for i := 1; i < len(arts); i++ {
		cur := arts[i].DeterministicCounters()
		if len(cur) != len(ref) {
			return nil, fmt.Errorf("perf: %s repeat %d has %d deterministic counters, repeat 0 has %d — repeats are not reproducible",
				side, i, len(cur), len(ref))
		}
		for k, v := range ref {
			if cur[k] != v {
				return nil, fmt.Errorf("perf: %s repeat %d disagrees with repeat 0 on %s (%d vs %d) — repeats are not reproducible",
					side, i, k, cur[k], v)
			}
		}
	}
	return ref, nil
}
