package perf

import (
	"errors"
	"io/fs"
	"testing"
)

// TestCommittedBaselinesNoDrift cross-checks the two committed perf
// artifacts: BENCH_PR10.json (FFT spectrum + allocation-free tick loop)
// against BENCH_PR4.json (the original baseline). The deterministic
// counters must be byte-clean — the performance work is required to
// change how fast the simulation runs, never what it computes. Running
// the check as a plain unit test puts it in tier-1, so a drift is
// caught by `go test ./...` without waiting for the CI perf job.
func TestCommittedBaselinesNoDrift(t *testing.T) {
	baseline, err := ReadFile("../../BENCH_PR4.json")
	if err != nil {
		t.Fatalf("read BENCH_PR4.json: %v", err)
	}
	current, err := ReadFile("../../BENCH_PR10.json")
	if errors.Is(err, fs.ErrNotExist) {
		t.Skip("BENCH_PR10.json not committed yet")
	}
	if err != nil {
		t.Fatalf("read BENCH_PR10.json: %v", err)
	}
	cmp, err := Compare(baseline, current, 0)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	for _, d := range cmp.Drift {
		t.Errorf("deterministic counter drift: %s baseline=%s current=%s", d.Name, d.Baseline, d.Current)
	}

	// The PR10 artifact must also carry the spectrum micro-benchmark
	// with the promised ≥2× FFT-over-Goertzel speedup at paper scale.
	sb := current[0].Spectrum
	if sb == nil {
		t.Fatal("BENCH_PR10.json has no spectrum micro-benchmark section")
	}
	if sb.Speedup < 2 {
		t.Errorf("spectrum FFT speedup %.2fx over Goertzel, want >= 2x", sb.Speedup)
	}
}
