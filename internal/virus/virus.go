// Package virus implements the power-virus victim workload used to
// characterize the side channel (Fig. 2 of the paper).
//
// Following Gnad et al. (FPL'17) as reproduced by the paper, the design
// deploys 160,000 self-toggling instances spread over the die, divided
// into 160 groups of 1,000 evenly distributed instances. After the
// bitstream is "deployed", software on the ARM cores can activate any
// number of groups at runtime, stepping the victim's switching activity
// through 161 distinct levels (0..160 groups).
//
// Deployed-but-inactive instances still contribute static leakage on the
// rail (modeled by the rail's static current), which is why measured
// current does not start from zero — a detail the paper calls out.
package virus

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fabric"
)

// Default geometry from the paper.
const (
	// DefaultGroups is the number of independently activatable groups.
	DefaultGroups = 160
	// DefaultInstancesPerGroup is the instance count per group.
	DefaultInstancesPerGroup = 1000
)

// Config describes a power-virus array.
type Config struct {
	// Groups is the number of groups; zero means DefaultGroups.
	Groups int
	// InstancesPerGroup is the per-group instance count; zero means
	// DefaultInstancesPerGroup.
	InstancesPerGroup int
	// TogglesPerInstance is the equivalent number of toggling logic
	// elements contributed by one active instance; zero means 1.
	TogglesPerInstance float64
}

// Array is the deployed power-virus bitstream. It implements
// fabric.Circuit.
type Array struct {
	groups   int
	perGroup int
	toggles  float64
	active   int
}

// New validates cfg and returns an inactive array.
func New(cfg Config) (*Array, error) {
	if cfg.Groups == 0 {
		cfg.Groups = DefaultGroups
	}
	if cfg.InstancesPerGroup == 0 {
		cfg.InstancesPerGroup = DefaultInstancesPerGroup
	}
	if cfg.TogglesPerInstance == 0 {
		cfg.TogglesPerInstance = 1
	}
	if cfg.Groups < 0 || cfg.InstancesPerGroup < 0 || cfg.TogglesPerInstance < 0 {
		return nil, errors.New("virus: negative geometry")
	}
	return &Array{
		groups:   cfg.Groups,
		perGroup: cfg.InstancesPerGroup,
		toggles:  cfg.TogglesPerInstance,
	}, nil
}

// Deploy places the array spread across every clock region of the
// fabric, the paper's "cover major routing places" layout.
func (a *Array) Deploy(f *fabric.Fabric) error {
	return f.Place(a, f.SpreadEvenly())
}

// Groups returns the number of groups.
func (a *Array) Groups() int { return a.groups }

// Instances returns the total deployed instance count.
func (a *Array) Instances() int { return a.groups * a.perGroup }

// ActiveGroups returns the number of currently activated groups.
func (a *Array) ActiveGroups() int { return a.active }

// SetActiveGroups activates the first n groups, the runtime control the
// ARM-side software exercises. n must lie in [0, Groups].
func (a *Array) SetActiveGroups(n int) error {
	if n < 0 || n > a.groups {
		return fmt.Errorf("virus: active groups %d outside [0,%d]", n, a.groups)
	}
	a.active = n
	return nil
}

// CircuitName implements fabric.Circuit.
func (a *Array) CircuitName() string { return "power-virus" }

// Utilization implements fabric.Circuit: each instance occupies one LUT
// and one flip-flop (a combinational toggler feeding a register).
func (a *Array) Utilization() fabric.Resources {
	n := a.Instances()
	return fabric.Resources{LUTs: n, FFs: n}
}

// Step implements fabric.Circuit. The virus is purely level-driven; its
// activity changes only when groups are (de)activated.
func (a *Array) Step(now, dt time.Duration) {}

// ActiveElements implements fabric.Circuit.
func (a *Array) ActiveElements() float64 {
	return float64(a.active*a.perGroup) * a.toggles
}
