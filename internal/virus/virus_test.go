package virus

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fabric"
)

func TestDefaults(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if a.Groups() != 160 {
		t.Fatalf("Groups = %d, want 160", a.Groups())
	}
	if a.Instances() != 160000 {
		t.Fatalf("Instances = %d, want 160000", a.Instances())
	}
	if a.ActiveGroups() != 0 || a.ActiveElements() != 0 {
		t.Fatal("new array should be inactive")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Groups: -1}); err == nil {
		t.Fatal("negative groups accepted")
	}
	if _, err := New(Config{InstancesPerGroup: -1}); err == nil {
		t.Fatal("negative instances accepted")
	}
	if _, err := New(Config{TogglesPerInstance: -1}); err == nil {
		t.Fatal("negative toggles accepted")
	}
}

func TestSetActiveGroups(t *testing.T) {
	a, _ := New(Config{})
	if err := a.SetActiveGroups(40); err != nil {
		t.Fatalf("SetActiveGroups: %v", err)
	}
	if a.ActiveGroups() != 40 {
		t.Fatalf("ActiveGroups = %d", a.ActiveGroups())
	}
	if a.ActiveElements() != 40000 {
		t.Fatalf("ActiveElements = %v, want 40000", a.ActiveElements())
	}
	if err := a.SetActiveGroups(-1); err == nil {
		t.Fatal("negative accepted")
	}
	if err := a.SetActiveGroups(161); err == nil {
		t.Fatal("overflow accepted")
	}
	if err := a.SetActiveGroups(160); err != nil {
		t.Fatalf("full activation rejected: %v", err)
	}
}

func TestUtilizationFitsZU9EG(t *testing.T) {
	a, _ := New(Config{})
	u := a.Utilization()
	if u.LUTs != 160000 || u.FFs != 160000 {
		t.Fatalf("Utilization = %+v", u)
	}
	if !u.Fits(fabric.ZU9EG().Total) {
		t.Fatal("default virus does not fit the ZCU102 device")
	}
}

func TestDeploy(t *testing.T) {
	f, err := fabric.New(fabric.Config{
		Device:        fabric.ZU9EG(),
		CapPerElement: 1e-13,
		Voltage:       func() float64 { return 0.85 },
	})
	if err != nil {
		t.Fatalf("fabric.New: %v", err)
	}
	a, _ := New(Config{})
	if err := a.Deploy(f); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if f.Circuits() != 1 {
		t.Fatal("array not placed")
	}
	// Activity flows through the fabric.
	if err := a.SetActiveGroups(10); err != nil {
		t.Fatal(err)
	}
	f.Step(0, time.Millisecond)
	if f.TotalActivity() != 10000 {
		t.Fatalf("fabric activity = %v, want 10000", f.TotalActivity())
	}
	// Activity is conserved across the spread placement.
	sum := 0.0
	for _, r := range f.SpreadEvenly() {
		a, err := f.RegionActivity(r)
		if err != nil {
			t.Fatal(err)
		}
		sum += a
	}
	if sum < 9999 || sum > 10001 {
		t.Fatalf("regional activity sum = %v", sum)
	}
}

func TestTogglesPerInstanceScaling(t *testing.T) {
	a, err := New(Config{Groups: 2, InstancesPerGroup: 10, TogglesPerInstance: 2.5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := a.SetActiveGroups(2); err != nil {
		t.Fatal(err)
	}
	if a.ActiveElements() != 50 {
		t.Fatalf("ActiveElements = %v, want 50", a.ActiveElements())
	}
}

// Property: activity is exactly linear in the activation level.
func TestActivityLinearityProperty(t *testing.T) {
	a, _ := New(Config{})
	f := func(n uint8) bool {
		level := int(n) % 161
		if err := a.SetActiveGroups(level); err != nil {
			return false
		}
		return a.ActiveElements() == float64(level*1000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
