package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func newTestRail(t *testing.T, static float64) *Rail {
	t.Helper()
	r, err := NewRail(RailConfig{Name: "VCCINT", NominalVoltage: 0.85, StaticCurrent: static})
	if err != nil {
		t.Fatalf("NewRail: %v", err)
	}
	return r
}

func TestNewRailValidation(t *testing.T) {
	cases := []RailConfig{
		{},                              // no name
		{Name: "x"},                     // no voltage
		{Name: "x", NominalVoltage: -1}, // negative voltage
		{Name: "x", NominalVoltage: 1, StaticCurrent: -1},
		{Name: "x", NominalVoltage: 1, NoiseSigma: -1},
		{Name: "x", NominalVoltage: 1, NoiseSigma: 0.1}, // noise without rng
	}
	for i, cfg := range cases {
		if _, err := NewRail(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestRailAccessors(t *testing.T) {
	r := newTestRail(t, 0.6)
	if r.Name() != "VCCINT" {
		t.Fatalf("Name = %q", r.Name())
	}
	if r.NominalVoltage() != 0.85 || r.Voltage() != 0.85 {
		t.Fatalf("voltages = %v/%v", r.NominalVoltage(), r.Voltage())
	}
	if r.StaticCurrent() != 0.6 {
		t.Fatalf("static = %v", r.StaticCurrent())
	}
	r.SetVoltage(0.83)
	if r.Voltage() != 0.83 {
		t.Fatalf("SetVoltage not applied")
	}
}

func TestRailSumsSources(t *testing.T) {
	r := newTestRail(t, 0.5)
	r.MustAttach(&ConstantSource{Name: "a", Amps: 1.0})
	r.MustAttach(&ConstantSource{Name: "b", Amps: 2.5})
	r.Step(0, time.Millisecond)
	if got := r.Current(); got != 4.0 {
		t.Fatalf("Current = %v, want 4.0", got)
	}
	wantP := 0.85 * 4.0
	if math.Abs(r.Power()-wantP) > 1e-12 {
		t.Fatalf("Power = %v, want %v", r.Power(), wantP)
	}
}

func TestRailAttachErrors(t *testing.T) {
	r := newTestRail(t, 0)
	if err := r.Attach(nil); err == nil {
		t.Fatal("nil source accepted")
	}
	s := &ConstantSource{Name: "a", Amps: 1}
	r.MustAttach(s)
	if err := r.Attach(s); err == nil {
		t.Fatal("duplicate source accepted")
	}
	if r.Sources() != 1 {
		t.Fatalf("Sources = %d, want 1", r.Sources())
	}
}

func TestMustAttachPanics(t *testing.T) {
	r := newTestRail(t, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAttach(nil) did not panic")
		}
	}()
	r.MustAttach(nil)
}

func TestRailCurrentBeforeStepIsZero(t *testing.T) {
	r := newTestRail(t, 0.5)
	if r.Current() != 0 {
		t.Fatalf("pre-step current = %v, want 0", r.Current())
	}
}

func TestRailNoiseIsZeroMeanAndClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, err := NewRail(RailConfig{
		Name: "n", NominalVoltage: 0.85,
		StaticCurrent: 1.0, NoiseSigma: 0.01, Rand: rng,
	})
	if err != nil {
		t.Fatalf("NewRail: %v", err)
	}
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		r.Step(0, time.Millisecond)
		c := r.Current()
		if c < 0 {
			t.Fatal("rail sourced negative current")
		}
		sum += c
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.001 {
		t.Fatalf("noisy mean = %v, want ~1.0", mean)
	}
}

func TestRailClampsNegativeTotal(t *testing.T) {
	r := newTestRail(t, 0)
	r.MustAttach(&ConstantSource{Name: "sink", Amps: -5})
	r.Step(0, time.Millisecond)
	if r.Current() != 0 {
		t.Fatalf("Current = %v, want clamp to 0", r.Current())
	}
}

func TestActivityModel(t *testing.T) {
	m := ActivityModel{CapPerElement: 1e-12, ClockHz: 300e6}
	// I = C*f*V*n = 1e-12 * 3e8 * 0.85 * 1000
	got := m.CurrentFor(1000, 0.85)
	want := 1e-12 * 300e6 * 0.85 * 1000
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("CurrentFor = %v, want %v", got, want)
	}
	if m.CurrentFor(0, 0.85) != 0 || m.CurrentFor(-5, 0.85) != 0 {
		t.Fatal("non-positive activity should draw nothing")
	}
	if math.Abs(m.PowerFor(1000, 0.85)-want*0.85) > 1e-15 {
		t.Fatalf("PowerFor inconsistent with CurrentFor")
	}
}

// Property: rail current is linear in the number of identical sources.
func TestRailLinearityProperty(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k%32) + 1
		r, err := NewRail(RailConfig{Name: "p", NominalVoltage: 1, StaticCurrent: 0.25})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if err := r.Attach(&ConstantSource{Name: "s", Amps: 0.125}); err != nil {
				return false
			}
		}
		r.Step(0, time.Millisecond)
		want := 0.25 + 0.125*float64(n)
		return math.Abs(r.Current()-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: activity current scales linearly with n and with V.
func TestActivityLinearityProperty(t *testing.T) {
	m := ActivityModel{CapPerElement: 2e-13, ClockHz: 100e6}
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(b)
		sum := m.CurrentFor(x, 0.9) + m.CurrentFor(y, 0.9)
		joint := m.CurrentFor(x+y, 0.9)
		return math.Abs(sum-joint) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
