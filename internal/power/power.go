// Package power models the supply rails of an ARM-FPGA SoC board.
//
// Each monitored hardware component (full-power CPU domain, low-power CPU
// domain, FPGA logic, DDR memory) is supplied by a Rail. Circuits attach
// to a rail as current Sources; once per simulation tick the rail sums
// the static bias current and every source's dynamic draw, applies a
// small electrical noise term, and exposes the resulting current and
// power. The rail's voltage is owned by the regulator in internal/pdn.
//
// The package implements Equation 2 of the AmpereBleed paper:
//
//	P_dyn = V_dd * ΣI(LE, RAM, DSP, Clocks, ...)
//
// the physical fact the attack rests on — even with V_dd pinned by a
// stabilizer, power changes appear as current changes.
package power

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Source is anything that draws current from a rail. Implementations are
// stepped by the simulation engine before the rail that reads them, so
// Current always reflects the present tick.
type Source interface {
	// SourceName identifies the source for diagnostics.
	SourceName() string
	// Current returns the instantaneous dynamic current draw in amps.
	Current() float64
}

// ConstantSource draws a fixed current; useful for idle logic blocks and
// in tests.
type ConstantSource struct {
	Name string
	Amps float64
}

// SourceName implements Source.
func (c *ConstantSource) SourceName() string { return c.Name }

// Current implements Source.
func (c *ConstantSource) Current() float64 { return c.Amps }

// Rail is a monitored supply rail.
type Rail struct {
	name    string
	nominal float64 // design voltage in volts
	voltage float64 // present voltage, set by the regulator
	static  float64 // static (leakage + bias) current in amps

	noiseSigma float64 // gaussian current noise, amps RMS
	rng        *rand.Rand

	sources []Source

	current     float64 // last computed total current, amps
	staticScale float64 // leakage multiplier, set by a ThermalMass
}

// RailConfig describes a rail.
type RailConfig struct {
	// Name of the rail, e.g. "VCCINT".
	Name string
	// NominalVoltage in volts.
	NominalVoltage float64
	// StaticCurrent in amps: leakage and bias draw present even when all
	// attached circuits are idle. The paper notes current readings "do
	// not start from 0" because of exactly this static workload.
	StaticCurrent float64
	// NoiseSigma is the RMS of the gaussian electrical noise added to the
	// rail current each tick, in amps. Zero disables noise.
	NoiseSigma float64
	// Rand supplies the noise stream. Required when NoiseSigma > 0.
	Rand *rand.Rand
}

// NewRail validates cfg and returns a rail at its nominal voltage.
func NewRail(cfg RailConfig) (*Rail, error) {
	if cfg.Name == "" {
		return nil, errors.New("power: rail needs a name")
	}
	if cfg.NominalVoltage <= 0 {
		return nil, fmt.Errorf("power: rail %s: non-positive nominal voltage", cfg.Name)
	}
	if cfg.StaticCurrent < 0 {
		return nil, fmt.Errorf("power: rail %s: negative static current", cfg.Name)
	}
	if cfg.NoiseSigma < 0 {
		return nil, fmt.Errorf("power: rail %s: negative noise sigma", cfg.Name)
	}
	if cfg.NoiseSigma > 0 && cfg.Rand == nil {
		return nil, fmt.Errorf("power: rail %s: noise requires a random stream", cfg.Name)
	}
	return &Rail{
		name:        cfg.Name,
		nominal:     cfg.NominalVoltage,
		voltage:     cfg.NominalVoltage,
		static:      cfg.StaticCurrent,
		noiseSigma:  cfg.NoiseSigma,
		rng:         cfg.Rand,
		staticScale: 1,
	}, nil
}

// Name returns the rail name.
func (r *Rail) Name() string { return r.name }

// NominalVoltage returns the design voltage.
func (r *Rail) NominalVoltage() float64 { return r.nominal }

// Voltage returns the present rail voltage.
func (r *Rail) Voltage() float64 { return r.voltage }

// SetVoltage is called by the regulator each tick.
func (r *Rail) SetVoltage(v float64) { r.voltage = v }

// Current returns the total rail current computed on the last Step, in
// amps.
func (r *Rail) Current() float64 { return r.current }

// Power returns the instantaneous rail power in watts (V · I, Eq. 2).
func (r *Rail) Power() float64 { return r.voltage * r.current }

// StaticCurrent returns the rail's always-on current component at the
// reference temperature.
func (r *Rail) StaticCurrent() float64 { return r.static }

// SetStaticScale sets the leakage multiplier applied to the static
// current (1 at the reference temperature); driven by a ThermalMass.
func (r *Rail) SetStaticScale(s float64) {
	if s < 0 {
		s = 0
	}
	r.staticScale = s
}

// StaticScale returns the present leakage multiplier.
func (r *Rail) StaticScale() float64 { return r.staticScale }

// Attach adds a source to the rail. Attaching the same source twice is
// rejected so aggregate current cannot silently double-count.
func (r *Rail) Attach(s Source) error {
	if s == nil {
		return fmt.Errorf("power: rail %s: nil source", r.name)
	}
	for _, have := range r.sources {
		if have == s {
			return fmt.Errorf("power: rail %s: source %s already attached", r.name, s.SourceName())
		}
	}
	r.sources = append(r.sources, s)
	return nil
}

// MustAttach is Attach for static wiring; it panics on error.
func (r *Rail) MustAttach(s Source) {
	if err := r.Attach(s); err != nil {
		panic(err)
	}
}

// Sources returns the number of attached sources.
func (r *Rail) Sources() int { return len(r.sources) }

// Step implements sim.Steppable: it re-sums the rail current for this
// tick. Negative totals (possible only through pathological noise draws)
// are clamped to zero, as a physical rail never sources current back.
func (r *Rail) Step(now, dt time.Duration) {
	total := r.static * r.staticScale
	for _, s := range r.sources {
		total += s.Current()
	}
	if r.noiseSigma > 0 {
		total += r.rng.NormFloat64() * r.noiseSigma
	}
	if total < 0 {
		total = 0
	}
	r.current = total
}

// ActivityModel converts a switching-activity level (a count of actively
// toggling logic elements) into dynamic current, using the standard CMOS
// dynamic-power relation P = α·C·V²·f per element, hence I = α·C·V·f.
type ActivityModel struct {
	// CapPerElement is the effective switched capacitance per element in
	// farads (includes the activity factor α).
	CapPerElement float64
	// ClockHz is the toggle clock frequency.
	ClockHz float64
}

// CurrentFor returns the dynamic current in amps drawn by n active
// elements on a rail at voltage v.
func (m ActivityModel) CurrentFor(n float64, v float64) float64 {
	if n <= 0 {
		return 0
	}
	return m.CapPerElement * m.ClockHz * v * n
}

// PowerFor returns the dynamic power in watts for n active elements at
// voltage v.
func (m ActivityModel) PowerFor(n float64, v float64) float64 {
	return m.CurrentFor(n, v) * v
}
