package power

import (
	"errors"
	"math"
	"time"
)

// ThermalMass models the die's first-order thermal behaviour and its
// feedback into leakage: junction temperature follows dissipated power
// through a thermal resistance with an RC time constant, and the rail's
// static (leakage) current grows exponentially-approximately-linearly
// with temperature. The result is the slow upward drift of idle current
// after a sustained workload — a second-order side channel of its own
// (the thermal residue of a victim's recent activity survives after the
// workload stops).
type ThermalMass struct {
	rail *Rail

	ambient float64 // °C
	rth     float64 // K/W junction-to-ambient
	tau     float64 // seconds, thermal RC constant
	tempCo  float64 // fractional leakage increase per kelvin
	ref     float64 // °C at which the rail's nominal static current holds

	temp float64 // present junction temperature, °C
}

// ThermalConfig parameterizes a ThermalMass.
type ThermalConfig struct {
	// Rail whose power heats the die and whose static current drifts.
	// Required.
	Rail *Rail
	// AmbientC is the ambient temperature; zero means 25 °C.
	AmbientC float64
	// RthKPerW is the junction-to-ambient thermal resistance; zero means
	// 0.5 K/W (a heatsinked ZU9EG).
	RthKPerW float64
	// TauSeconds is the thermal time constant; zero means 10 s.
	TauSeconds float64
	// LeakagePerK is the fractional static-current increase per kelvin;
	// zero means 0.004 (+0.4 %/K, a typical FinFET leakage slope).
	LeakagePerK float64
}

// NewThermalMass validates cfg and returns a mass at ambient.
func NewThermalMass(cfg ThermalConfig) (*ThermalMass, error) {
	if cfg.Rail == nil {
		return nil, errors.New("power: thermal mass needs a rail")
	}
	if cfg.AmbientC == 0 {
		cfg.AmbientC = 25
	}
	if cfg.RthKPerW == 0 {
		cfg.RthKPerW = 0.5
	}
	if cfg.TauSeconds == 0 {
		cfg.TauSeconds = 10
	}
	if cfg.LeakagePerK == 0 {
		cfg.LeakagePerK = 0.004
	}
	if cfg.RthKPerW < 0 || cfg.TauSeconds <= 0 || cfg.LeakagePerK < 0 {
		return nil, errors.New("power: invalid thermal parameters")
	}
	return &ThermalMass{
		rail:    cfg.Rail,
		ambient: cfg.AmbientC,
		rth:     cfg.RthKPerW,
		tau:     cfg.TauSeconds,
		tempCo:  cfg.LeakagePerK,
		ref:     cfg.AmbientC,
		temp:    cfg.AmbientC,
	}, nil
}

// TemperatureC returns the present junction temperature.
func (t *ThermalMass) TemperatureC() float64 { return t.temp }

// Step implements sim.Steppable. Register it after the rail it heats so
// it integrates this tick's power; the leakage scale it writes takes
// effect on the next tick — the physical one-tick lag of a thermal loop.
func (t *ThermalMass) Step(now, dt time.Duration) {
	target := t.ambient + t.rail.Power()*t.rth
	alpha := 1 - math.Exp(-dt.Seconds()/t.tau)
	t.temp += (target - t.temp) * alpha
	t.rail.SetStaticScale(1 + t.tempCo*(t.temp-t.ref))
}
