package power

import (
	"math"
	"testing"
	"time"
)

func thermalRail(t *testing.T) *Rail {
	t.Helper()
	r, err := NewRail(RailConfig{Name: "VCCINT", NominalVoltage: 0.85, StaticCurrent: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewThermalMassValidation(t *testing.T) {
	if _, err := NewThermalMass(ThermalConfig{}); err == nil {
		t.Fatal("nil rail accepted")
	}
	r := thermalRail(t)
	if _, err := NewThermalMass(ThermalConfig{Rail: r, TauSeconds: -1}); err == nil {
		t.Fatal("negative tau accepted")
	}
	if _, err := NewThermalMass(ThermalConfig{Rail: r, LeakagePerK: -1}); err == nil {
		t.Fatal("negative leakage slope accepted")
	}
	tm, err := NewThermalMass(ThermalConfig{Rail: r})
	if err != nil {
		t.Fatalf("NewThermalMass: %v", err)
	}
	if tm.TemperatureC() != 25 {
		t.Fatalf("initial T = %v, want ambient 25", tm.TemperatureC())
	}
}

func TestThermalHeatsUnderLoadAndRaisesLeakage(t *testing.T) {
	r := thermalRail(t)
	tm, err := NewThermalMass(ThermalConfig{Rail: r, RthKPerW: 2, TauSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	load := &ConstantSource{Name: "load", Amps: 5} // ~4.25 W
	r.MustAttach(load)
	dt := 10 * time.Millisecond
	for i := 0; i < 500; i++ { // 5 s >> tau
		r.Step(0, dt)
		tm.Step(0, dt)
	}
	// Steady state: T = 25 + P*Rth; P grows slightly as leakage rises.
	if tm.TemperatureC() < 32 || tm.TemperatureC() > 36 {
		t.Fatalf("T = %v, want ~33-34 °C", tm.TemperatureC())
	}
	if r.StaticScale() <= 1.02 {
		t.Fatalf("leakage scale = %v, want noticeably above 1", r.StaticScale())
	}
	// Remove the load: temperature and leakage relax back.
	load.Amps = 0
	for i := 0; i < 1000; i++ {
		r.Step(0, dt)
		tm.Step(0, dt)
	}
	if math.Abs(tm.TemperatureC()-25.4) > 0.5 { // residual self-heating only
		t.Fatalf("cooled T = %v, want ~25", tm.TemperatureC())
	}
}

func TestThermalResidueSurvivesWorkload(t *testing.T) {
	// The second-order channel: right after a workload stops, the rail
	// still draws more than a cold rail — the victim's thermal residue.
	r := thermalRail(t)
	tm, err := NewThermalMass(ThermalConfig{Rail: r, RthKPerW: 2, TauSeconds: 5})
	if err != nil {
		t.Fatal(err)
	}
	load := &ConstantSource{Name: "load", Amps: 6}
	r.MustAttach(load)
	dt := 10 * time.Millisecond
	for i := 0; i < 2000; i++ { // 20 s hot
		r.Step(0, dt)
		tm.Step(0, dt)
	}
	load.Amps = 0
	r.Step(0, dt)
	tm.Step(0, dt)
	r.Step(0, dt) // next tick sees the hot leakage scale
	hotIdle := r.Current()
	if hotIdle <= 0.505 {
		t.Fatalf("hot idle current = %v, want > cold 0.5 A", hotIdle)
	}
}

func TestStaticScaleClampsNegative(t *testing.T) {
	r := thermalRail(t)
	r.SetStaticScale(-5)
	if r.StaticScale() != 0 {
		t.Fatalf("scale = %v, want clamp to 0", r.StaticScale())
	}
	r.Step(0, time.Millisecond)
	if r.Current() != 0 {
		t.Fatalf("current = %v with zero scale", r.Current())
	}
}
