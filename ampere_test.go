package ampere

import (
	"errors"
	"io/fs"
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow.
func TestPublicAPIQuickstart(t *testing.T) {
	b, err := NewBoard(BoardConfig{Seed: 1})
	if err != nil {
		t.Fatalf("NewBoard: %v", err)
	}
	b.Run(100 * time.Millisecond)
	atk, err := NewAttacker(b.Sysfs(), Unprivileged)
	if err != nil {
		t.Fatalf("NewAttacker: %v", err)
	}
	sensors, err := atk.Discover()
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(sensors) != 18 {
		t.Fatalf("sensors = %d, want 18", len(sensors))
	}
	probe, err := atk.Probe(Channel{Label: SensorFPGA, Kind: Current})
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	amps, err := probe()
	if err != nil {
		t.Fatalf("probe(): %v", err)
	}
	if amps <= 0 {
		t.Fatalf("current = %v", amps)
	}
}

func TestPublicPowerVirusLeak(t *testing.T) {
	b, err := NewBoard(BoardConfig{Seed: 2})
	if err != nil {
		t.Fatalf("NewBoard: %v", err)
	}
	virus, err := DeployPowerVirus(b)
	if err != nil {
		t.Fatalf("DeployPowerVirus: %v", err)
	}
	atk, _ := NewAttacker(b.Sysfs(), Unprivileged)
	probe, err := atk.Probe(Channel{Label: SensorFPGA, Kind: Current})
	if err != nil {
		t.Fatal(err)
	}
	b.Run(100 * time.Millisecond)
	idle, _ := probe()
	if err := virus.SetActiveGroups(100); err != nil {
		t.Fatal(err)
	}
	b.Run(100 * time.Millisecond)
	busy, _ := probe()
	// 100 groups ≈ 4 A of extra draw at the Fig. 2 calibration.
	if busy-idle < 3.5 {
		t.Fatalf("leak = %v A, want ~4", busy-idle)
	}
}

func TestPublicDPUAndClassifier(t *testing.T) {
	b, err := NewBoard(BoardConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := DeployDPU(b)
	if err != nil {
		t.Fatalf("DeployDPU: %v", err)
	}
	if err := LoadZooModel(d, "ResNet-50"); err != nil {
		t.Fatalf("LoadZooModel: %v", err)
	}
	if err := LoadZooModel(d, "NoSuchNet"); err == nil {
		t.Fatal("bogus model accepted")
	}
	b.Run(300 * time.Millisecond)
	if d.Inferences() == 0 {
		t.Fatal("DPU never completed an inference")
	}

	// Classifier round trip on a tiny capture set.
	cfg := FingerprintConfig{
		Models:         []string{"MobileNet-V1", "VGG-19"},
		TracesPerModel: 4,
		TraceDuration:  time.Second,
		Durations:      []time.Duration{time.Second},
		Folds:          2,
		Trees:          15,
		Channels:       []Channel{{Label: SensorFPGA, Kind: Current}},
	}
	caps, err := CollectDPUTraces(cfg)
	if err != nil {
		t.Fatalf("CollectDPUTraces: %v", err)
	}
	clf, err := TrainClassifier(cfg, caps, Channel{Label: SensorFPGA, Kind: Current}, time.Second)
	if err != nil {
		t.Fatalf("TrainClassifier: %v", err)
	}
	if len(clf.Classes()) != 2 {
		t.Fatalf("classes = %v", clf.Classes())
	}
	guess, err := clf.Classify(caps[0])
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if guess != caps[0].Model {
		t.Fatalf("training-set classification: got %s, want %s", guess, caps[0].Model)
	}
	top, err := clf.TopK(caps[len(caps)-1], 2)
	if err != nil || len(top) != 2 {
		t.Fatalf("TopK: %v %v", top, err)
	}
}

func TestPublicRSA(t *testing.T) {
	b, err := NewBoard(BoardConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DeployRSA(b, 512, 99)
	if err != nil {
		t.Fatalf("DeployRSA: %v", err)
	}
	if c.Weight() != 512 {
		t.Fatalf("Weight = %d", c.Weight())
	}
	b.Run(100 * time.Millisecond)
	if c.Exponentiations() == 0 {
		t.Fatal("RSA victim idle")
	}
	if _, err := DeployRSA(b, 0, 99); err == nil {
		t.Fatal("weight 0 accepted")
	}
}

func TestPublicMitigation(t *testing.T) {
	res, err := Mitigation(11)
	if err != nil {
		t.Fatalf("Mitigation: %v", err)
	}
	if !res.Effective() {
		t.Fatal("mitigation ineffective")
	}
	if !errors.Is(res.AfterAttackerErr, fs.ErrPermission) {
		t.Fatalf("err = %v", res.AfterAttackerErr)
	}
}

func TestPublicCatalogAndZoo(t *testing.T) {
	if got := len(BoardCatalog()); got != 8 {
		t.Fatalf("catalog = %d", got)
	}
	if got := len(ModelZoo()); got != 39 {
		t.Fatalf("zoo = %d", got)
	}
	if got := len(Fig3Models()); got != 6 {
		t.Fatalf("fig3 models = %d", got)
	}
	if got := len(SensitiveChannels()); got != 6 {
		t.Fatalf("sensitive channels = %d", got)
	}
}

func TestPublicCharacterizeSmall(t *testing.T) {
	res, err := Characterize(CharacterizeConfig{Levels: 6, SamplesPerLevel: 5})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	if len(res.Readings) != 6 {
		t.Fatalf("readings = %d", len(res.Readings))
	}
	if res.Current.Pearson < 0.99 {
		t.Fatalf("current Pearson = %v", res.Current.Pearson)
	}
}

func TestPublicCrossBoard(t *testing.T) {
	b, err := NewBoardByName("VEK280", BoardConfig{Seed: 6})
	if err != nil {
		t.Fatalf("NewBoardByName: %v", err)
	}
	if b.Spec().Name != "VEK280" {
		t.Fatalf("Spec = %+v", b.Spec())
	}
	if b.SensorCount() != 20 {
		t.Fatalf("sensors = %d, want 20 (Table I)", b.SensorCount())
	}
	b.Run(100 * time.Millisecond)
	atk, _ := NewAttacker(b.Sysfs(), Unprivileged)
	rows, err := Survey(b, atk, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("Survey: %v", err)
	}
	if len(rows) != 20 {
		t.Fatalf("survey rows = %d", len(rows))
	}
	if _, err := NewBoardByName("NoSuchBoard", BoardConfig{}); err == nil {
		t.Fatal("unknown board accepted")
	}
}

func TestPublicLeakageAssessment(t *testing.T) {
	res, err := AssessRSALeakage(LeakageConfig{SamplesPerSession: 300, RandomSessions: 2})
	if err != nil {
		t.Fatalf("AssessRSALeakage: %v", err)
	}
	if !res.TVLA.Leaks {
		t.Fatalf("channel did not leak (t=%v)", res.TVLA.T)
	}
}

func TestPublicApplicability(t *testing.T) {
	rows, err := Applicability(ApplicabilityConfig{Levels: 4, SamplesPerLevel: 4})
	if err != nil {
		t.Fatalf("Applicability: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestPublicRSAHammingWeightSmall(t *testing.T) {
	res, err := RSAHammingWeight(RSAConfig{Weights: []int{1, 1024}, Samples: 300})
	if err != nil {
		t.Fatalf("RSAHammingWeight: %v", err)
	}
	if res.Keys[0].Current.Median >= res.Keys[1].Current.Median {
		t.Fatal("HW 1 should draw less than HW 1024")
	}
}
