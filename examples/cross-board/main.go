// Cross-board portability: the paper's Table I surveys 8 commercial
// ARM-FPGA boards, all shipping INA226 sensors. This example runs the
// attack's discovery, triage, and characterization loop on a Versal
// VCK190 — a different FPGA family, CPU (Cortex-A72), and stabilizer
// band than the ZCU102 — and then sweeps the whole catalog.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A Versal board instead of the paper's ZCU102.
	board, err := ampere.NewBoardByName("VCK190", ampere.BoardConfig{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("board: %s (%s, %s, %d INA226 sensors)\n",
		board.Spec().Name, board.Spec().Family, board.Spec().CPUModel,
		board.Spec().INASensors)

	// Victim + triage: a DPU runs inference; the attacker ranks the
	// sensors it discovered without knowing any labels.
	dpu, err := ampere.DeployDPU(board)
	if err != nil {
		log.Fatal(err)
	}
	if err := ampere.LoadZooModel(dpu, "ResNet-50"); err != nil {
		log.Fatal(err)
	}
	board.Run(100 * time.Millisecond)
	attacker, err := ampere.NewAttacker(board.Sysfs(), ampere.Unprivileged)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := ampere.Survey(board, attacker, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top sensors by observed variation (unprivileged triage):")
	for i, r := range rows[:4] {
		fmt.Printf("  %d. %-12s %-22s std=%.4f A\n", i+1, r.Label, r.Dir, r.StdAmps)
	}

	// And the full catalog: the same attack loop works on every board.
	fmt.Println("\ncharacterizing the current channel on all 8 catalog boards:")
	apps, err := ampere.Applicability(ampere.ApplicabilityConfig{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range apps {
		fmt.Printf("  %-8s (%-17s): %2d sensors, current-vs-level r=%.4f, voltage in band: %v\n",
			a.Board, a.Family, a.Sensors, a.CurrentPearson, a.VoltageInBand)
	}
}
