// DPU fingerprinting end to end (Sec. IV-B): an offline phase trains a
// random-forest classifier on current traces of known models, then the
// online phase labels a "black-box" accelerator the attacker has never
// seen — identifying which encrypted DNN is running from nothing but
// unprivileged hwmon reads.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	victims := []string{
		"MobileNet-V1", "SqueezeNet-1.1", "EfficientNet-Lite0",
		"Inception-V3", "ResNet-50", "VGG-19",
	}
	cfg := ampere.FingerprintConfig{
		Seed:           1,
		Models:         victims,
		TracesPerModel: 8,
		TraceDuration:  3 * time.Second,
		Durations:      []time.Duration{3 * time.Second},
		Folds:          4,
		Channels: []ampere.Channel{
			{Label: ampere.SensorFPGA, Kind: ampere.Current},
		},
	}

	// --- Offline phase: collect labelled traces and train. ---
	fmt.Printf("offline phase: collecting %d traces for %d models...\n",
		cfg.TracesPerModel, len(victims))
	captures, err := ampere.CollectDPUTraces(cfg)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := ampere.TrainClassifier(cfg, captures,
		ampere.Channel{Label: ampere.SensorFPGA, Kind: ampere.Current},
		3*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained random forest over %d classes\n", len(clf.Classes()))

	// --- Online phase: a fresh black-box victim per model. The fresh
	// seed means new noise, new query stream — traces the classifier has
	// never seen. ---
	fresh := cfg
	fresh.Seed = 999
	fresh.TracesPerModel = 1
	fresh.Folds = 1 // collection only; no cross-validation here
	correct := 0
	for _, victim := range victims {
		fresh.Models = []string{victim}
		blackbox, err := ampere.CollectDPUTraces(fresh)
		if err != nil {
			log.Fatal(err)
		}
		guess, err := clf.Classify(blackbox[0])
		if err != nil {
			log.Fatal(err)
		}
		mark := "MISS"
		if guess == victim {
			mark = "HIT"
			correct++
		}
		fmt.Printf("  black-box running %-20s -> classified as %-20s [%s]\n",
			victim, guess, mark)
	}
	fmt.Printf("online phase: %d/%d correct\n", correct, len(victims))

	// --- And the paper's headline comparison: the same attack through
	// the voltage channel barely works. ---
	cfg.Channels = append(cfg.Channels,
		ampere.Channel{Label: ampere.SensorFPGA, Kind: ampere.Voltage})
	res, err := ampere.Fingerprint(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cur, _ := res.Cell(ampere.Channel{Label: ampere.SensorFPGA, Kind: ampere.Current}, 3*time.Second)
	vol, _ := res.Cell(ampere.Channel{Label: ampere.SensorFPGA, Kind: ampere.Voltage}, 3*time.Second)
	fmt.Printf("cross-validated top-1: current %.3f vs voltage %.3f\n", cur.Top1, vol.Top1)
}
