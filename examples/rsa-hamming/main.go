// RSA Hamming-weight recovery (Sec. IV-C): an RSA-1024 circuit with a
// secret exponent embedded in its (encrypted) bitstream repeatedly
// encrypts random plaintexts at 100 MHz. The square-and-multiply
// control flow activates the multiply module only on 1-bits, so the
// FPGA current sensor leaks the key's Hamming weight — knowledge that
// shrinks brute-force search space and seeds statistical key-recovery
// attacks.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/stats"
)

func main() {
	// First, watch the leak directly on one victim.
	board, err := ampere.NewBoard(ampere.BoardConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	circuit, err := ampere.DeployRSA(board, 512, 42)
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := ampere.NewAttacker(board.Sysfs(), ampere.Unprivileged)
	if err != nil {
		log.Fatal(err)
	}
	probe, err := attacker.Probe(ampere.Channel{
		Label: ampere.SensorFPGA, Kind: ampere.Current,
	})
	if err != nil {
		log.Fatal(err)
	}
	board.Run(200 * time.Millisecond)
	var samples []float64
	for i := 0; i < 200; i++ {
		board.Run(time.Millisecond) // 1 kHz attacker loop
		v, err := probe()
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, v)
	}
	med, err := stats.Quantile(samples, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim HW=512: %d exponentiations completed, median FPGA current %.4f A\n",
		circuit.Exponentiations(), med)

	// Then the full Fig. 4 sweep: 17 keys, weights 1..1024.
	res, err := ampere.RSAHammingWeight(ampere.RSAConfig{Seed: 7, Samples: 3000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nweight -> median current (A) / median power (W):")
	for _, k := range res.Keys {
		fmt.Printf("  HW %4d: %.4f A   %.3f W\n", k.Weight, k.Current.Median, k.Power.Median)
	}
	fmt.Printf("\ncurrent channel resolves %d/%d weights (paper: all 17)\n",
		res.CurrentGroups, len(res.Keys))
	fmt.Printf("power channel resolves only %d groups (paper: ~5)\n", res.PowerGroups)
	fmt.Printf("current-vs-weight Pearson: %.4f\n", res.CurrentPearson)
}
