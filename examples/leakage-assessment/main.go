// Leakage assessment: the defender's view. Before shipping a bitstream,
// run the standard TVLA fixed-vs-random test against the sensor
// interface an attacker would use. The square-and-multiply RSA circuit
// fails catastrophically; the Montgomery-ladder build passes — and the
// same harness then quantifies what the attacker's recovered Hamming
// weight is worth in brute-force bits.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("TVLA fixed-vs-random over the FPGA current channel (threshold |t| = 4.5):")

	plain, err := ampere.AssessRSALeakage(ampere.LeakageConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  square-and-multiply victim: t = %+8.1f  leaks = %-5v  SNR = %.0f\n",
		plain.TVLA.T, plain.TVLA.Leaks, plain.SNR)

	ladder, err := ampere.AssessRSALeakage(ampere.LeakageConfig{Seed: 5, Countermeasure: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Montgomery-ladder victim:   t = %+8.1f  leaks = %-5v  SNR = %.2f\n",
		ladder.TVLA.T, ladder.TVLA.Leaks, ladder.SNR)

	if plain.TVLA.Leaks && !ladder.TVLA.Leaks {
		fmt.Println("\nverdict: the ladder build is safe to ship against this channel;")
		fmt.Println("the naive build leaks its key's Hamming weight. What that costs:")
	}

	res, err := ampere.RSAHammingWeight(ampere.RSAConfig{
		Seed:    5,
		Weights: []int{64, 256, 512},
		Samples: 1500,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range res.Keys {
		fmt.Printf("  recovered HW %4d -> brute-force search space shrinks by %6.1f bits\n",
			k.Weight, k.SearchSpaceReductionBits)
	}
}
