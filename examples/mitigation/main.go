// Mitigation (Sec. V): restricting the hwmon value attributes to root
// blocks the unprivileged attack while keeping privileged monitoring
// alive — along with the deployment caveats the paper discusses.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	board, err := ampere.NewBoard(ampere.BoardConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	board.Run(100 * time.Millisecond)

	attacker, err := ampere.NewAttacker(board.Sysfs(), ampere.Unprivileged)
	if err != nil {
		log.Fatal(err)
	}
	probe, err := attacker.Probe(ampere.Channel{
		Label: ampere.SensorFPGA, Kind: ampere.Current,
	})
	if err != nil {
		log.Fatal(err)
	}
	before, err := probe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: unprivileged attacker reads FPGA current = %.3f A\n", before)

	// The administrator flips the sensitive attributes to mode 0400.
	if err := board.Hwmon().RestrictAllToRoot(); err != nil {
		log.Fatal(err)
	}
	if _, err := probe(); err != nil {
		fmt.Printf("after:  unprivileged read fails: %v\n", err)
	} else {
		log.Fatal("mitigation did not take effect")
	}

	// Benign root-level monitoring keeps working...
	admin, err := ampere.NewAttacker(board.Sysfs(), ampere.Privileged)
	if err != nil {
		log.Fatal(err)
	}
	rootProbe, err := admin.Probe(ampere.Channel{
		Label: ampere.SensorFPGA, Kind: ampere.Current,
	})
	if err != nil {
		log.Fatal(err)
	}
	v, err := rootProbe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after:  root monitoring still reads              = %.3f A\n", v)

	// ...but, as the paper notes, unprivileged *benign* consumers break
	// too: a userspace health daemon using the same interface now fails.
	fmt.Println("note:   unprivileged benign monitors lose the interface as well,")
	fmt.Println("        and legacy devices need a kernel/driver update to get this fix.")
}
