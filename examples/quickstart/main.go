// Quickstart: the AmpereBleed observation in ~50 lines.
//
// An unprivileged process on the ARM cores reads the FPGA's INA226
// current sensor through hwmon and watches a victim circuit light up —
// no crafted circuit, no shared-PDN assumption, no privileges.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// The "hardware": a simulated ZCU102 evaluation board.
	board, err := ampere.NewBoard(ampere.BoardConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	board.Run(100 * time.Millisecond) // let the sensors latch

	// The attacker: an unprivileged process discovering hwmon sensors.
	attacker, err := ampere.NewAttacker(board.Sysfs(), ampere.Unprivileged)
	if err != nil {
		log.Fatal(err)
	}
	sensors, err := attacker.Discover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d INA226 sensors without privileges\n", len(sensors))

	probe, err := attacker.Probe(ampere.Channel{
		Label: ampere.SensorFPGA,
		Kind:  ampere.Current,
	})
	if err != nil {
		log.Fatal(err)
	}
	idle, err := probe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("idle FPGA current:   %.3f A\n", idle)

	// The victim: a bitstream deployed with full control of the fabric.
	virus, err := ampere.DeployPowerVirus(board)
	if err != nil {
		log.Fatal(err)
	}
	if err := virus.SetActiveGroups(80); err != nil { // 80k instances
		log.Fatal(err)
	}
	board.Run(100 * time.Millisecond)
	busy, err := probe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("busy FPGA current:   %.3f A (victim: 80k active instances)\n", busy)
	fmt.Printf("leak: +%.0f mA, i.e. ~%.0f sensor LSBs — while the stabilized\n",
		(busy-idle)*1000, (busy-idle)*1000)

	volts, err := attacker.Probe(ampere.Channel{
		Label: ampere.SensorFPGA,
		Kind:  ampere.Voltage,
	})
	if err != nil {
		log.Fatal(err)
	}
	v, err := volts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supply voltage sits at %.4f V, pinned inside 0.825-0.876 V\n", v)
}
