// Command amperebleed is the interactive CLI of the AmpereBleed
// reproduction: it builds a simulated ZCU102 and drives the attack's
// building blocks from the command line.
//
// Paper experiments:
//
//	boards                     print the Table I board survey
//	characterize [-levels]     run the Fig. 2 sweep
//	fingerprint [-models ...]  fingerprint DPU accelerators (Table III)
//	rsa [-samples]             recover RSA key Hamming weights (Fig. 4)
//	mitigate                   demonstrate the Sec. V countermeasure
//
// Attack building blocks:
//
//	sensors                    discover hwmon sensors and print live readings
//	survey                     rank sensors by variation under victim load
//	watch [-channel] [-n]      poll one channel like the attack loop does
//	detect                     CUSUM workload-transition detection
//	export [-dir]              snapshot the sysfs tree to a real directory
//
// Extensions:
//
//	zoo                        list the 39-model fingerprinting suite
//	profile [-model]           per-layer DPU schedule analysis
//	leakage [-ladder]          TVLA fixed-vs-random assessment
//	applicability              the attack loop on all 8 Table I boards
//	covert [-bits]             PL->PS covert transmission over the sensor
//	robustness [-profile]      accuracy-vs-fault-rate sweep under injected faults
//	runs [-ledger]             list, filter and diff recorded run manifests
//	top [-addr]                live terminal dashboard of a running attack
//	serve [-addr]              HTTP job API with admission control and drain
//	resume <checkpoint>        continue an interrupted supervised run
//
// The global -faults flag (none|flaky-sysfs|stale-sensor|noisy-sched|
// hostile) injects deterministic sensor and scheduler faults into every
// simulated board; -fault-intensity scales the chosen profile.
//
// The global -ledger flag appends a run manifest (what ran, with which
// seed and fault profile, and the channel-quality figures it produced)
// to a JSONL run ledger after the command; -trace-out writes a Chrome
// trace-event timeline of the run, loadable in Perfetto.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/dpu"
	"repro/internal/faults"
	"repro/internal/imagenet"
	"repro/internal/jobs"
	"repro/internal/jobs/kinds"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/ledger"
	"repro/internal/obs/olog"
	"repro/internal/report"
	"repro/internal/sysfs"
	"repro/internal/virus"
)

// runMeta carries the per-command identity the run ledger needs out of
// each subcommand's private flag set; handlers report it via noteRun
// right after parsing their flags.
var runMeta struct {
	seed          int64
	workers       int
	runID         string
	parentRunID   string
	resumedShards int
	// command/faultProfile/faultIntensity, when set, override what the
	// manifest records: `resume` reports the experiment it continued
	// (kind and fault profile from the checkpoint), not itself, so a
	// resumed run's canonical manifest is comparable with the
	// uninterrupted run it completes.
	command        string
	faultProfile   string
	faultIntensity float64
}

// noteRun records the seed and worker count a command handler resolved
// from its flags, for the -ledger manifest written after the command.
func noteRun(seed int64, workers int) {
	runMeta.seed = seed
	runMeta.workers = workers
}

// noteLineage records a supervised run's resume lineage for the
// manifest: which run this one continues and how many shards it
// replayed from the checkpoint.
func noteLineage(runID, parentRunID string, resumedShards int) {
	runMeta.runID = runID
	runMeta.parentRunID = parentRunID
	runMeta.resumedShards = resumedShards
}

// noteResumedSpec records the identity of the run a checkpoint
// continues, overriding the manifest's command and fault fields.
func noteResumedSpec(kind, faultProfile string, faultIntensity float64) {
	runMeta.command = kind
	runMeta.faultProfile = faultProfile
	runMeta.faultIntensity = faultIntensity
}

// faultSpec keeps the raw global fault flags for commands that route
// through the job engine, whose checkpoints record the profile by name
// and intensity rather than as a resolved rate table.
var faultSpec struct {
	name      string
	intensity float64
}

func main() { os.Exit(run()) }

// run is main behind an exit code, so the ledger, trace export and
// obs-hold deferred work all still happen when a command fails or is
// interrupted — a cancelled run flushes everything it measured.
func run() int {
	// Global observability flags precede the command:
	//
	//	amperebleed [-obs] [-obs-addr host:port] <command> [flags]
	//
	// -obs prints a metrics snapshot after the command; -obs-addr serves
	// expvar, net/http/pprof, and /metrics/snapshot while it runs.
	obsText := flag.Bool("obs", false, "print an observability snapshot after the command")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /metrics/stream, /healthz, /debug/pprof and /metrics/snapshot on this address while the command runs")
	obsHold := flag.Duration("obs-hold", 0, "keep the -obs-addr server up this long after the command completes (for scraping a finished run)")
	history := flag.Bool("history", false, "record a metrics time series while the command runs (served on /metrics/range and /metrics/query, rendered as sparklines by `top`)")
	historyInterval := flag.Duration("history-interval", obs.DefaultHistoryInterval, "sampling interval of the -history recorder")
	logLevel := flag.String("log-level", "warn", "structured log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "structured log format: text|json")
	faultsName := flag.String("faults", "none", "fault profile injected into every simulated board: "+strings.Join(faults.PresetNames(), "|"))
	faultIntensity := flag.Float64("fault-intensity", 1, "scale factor applied to the -faults profile rates")
	ledgerPath := flag.String("ledger", "", "append a run manifest to this JSONL run ledger after the command")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run (load in Perfetto)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	if err := (runFlags{
		FaultIntensity:  *faultIntensity,
		ObsHold:         *obsHold,
		History:         *history,
		HistoryInterval: *historyInterval,
	}).validate(); err != nil {
		fmt.Fprintf(os.Stderr, "amperebleed: %v\n", err)
		return 2
	}
	start := time.Now()
	if err := olog.Setup(*logLevel, *logFormat, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "amperebleed: %v\n", err)
		return 2
	}
	olog.SetRunID(fmt.Sprintf("%s-%d-%d", cmd, os.Getpid(), start.Unix()))
	profile, err := parseFaults(*faultsName, *faultIntensity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amperebleed: %v\n", err)
		return 2
	}
	faultSpec.name, faultSpec.intensity = *faultsName, *faultIntensity
	// Two-stage shutdown: the first SIGINT/SIGTERM cancels runCtx so the
	// command winds down and the tail below still flushes the ledger,
	// trace and checkpoints; a second signal aborts immediately.
	sigCh, stopNotify := notifyInterrupts()
	defer stopNotify()
	runCtx, stopSignals := watchSignals(context.Background(), sigCh, os.Exit)
	defer stopSignals()
	if *history {
		// The recorder's own context, registered before the obs-server
		// defer: LIFO ordering keeps history sampling live through an
		// -obs-hold window, so a held server still answers /metrics/range
		// with fresh windows.
		histCtx, stopHistory := context.WithCancel(context.Background())
		defer stopHistory()
		obs.StartRecorder(histCtx, obs.RecorderOptions{Interval: *historyInterval})
	}
	if *obsAddr != "" {
		serveCtx, stopServe := context.WithCancel(context.Background())
		bound, shutdown, err := obs.Serve(serveCtx, *obsAddr, obs.Default)
		if err != nil {
			stopServe()
			fmt.Fprintf(os.Stderr, "amperebleed: obs server: %v\n", err)
			return 1
		}
		// Health rules watch the run while the server is up; violations
		// land in the structured log at warn and on /healthz.
		watchLog := olog.L("obs.watch")
		watcher := obs.Watch()
		watcher.OnViolation(func(v obs.Violation) {
			watchLog.Warn("health rule violated", "rule", v.Rule, "detail", v.Detail)
		})
		go watcher.Run(serveCtx, time.Second)
		defer func() {
			if *obsHold > 0 {
				fmt.Fprintf(os.Stderr, "obs: holding http://%s for %v after command exit\n", bound, *obsHold)
				time.Sleep(*obsHold)
			}
			stopServe()
			shutdown()
		}()
		fmt.Fprintf(os.Stderr, "obs: serving http://%s/metrics (OpenMetrics), /metrics/stream (SSE), /healthz and /debug/pprof/\n", bound)
		if *history {
			fmt.Fprintf(os.Stderr, "obs: recording metrics history every %v; query /metrics/range and /metrics/query\n", *historyInterval)
		}
	}
	switch cmd {
	case "boards":
		err = cmdBoards()
	case "sensors":
		err = cmdSensors(args)
	case "survey":
		err = cmdSurvey(args)
	case "watch":
		err = cmdWatch(args)
	case "characterize":
		err = cmdCharacterize(runCtx, args, profile)
	case "fingerprint":
		err = cmdFingerprint(args, profile)
	case "rsa":
		err = cmdRSA(args)
	case "mitigate":
		err = cmdMitigate(args)
	case "zoo":
		err = cmdZoo()
	case "profile":
		err = cmdProfile(args)
	case "leakage":
		err = cmdLeakage(args)
	case "applicability":
		err = cmdApplicability(args, profile)
	case "robustness":
		err = cmdRobustness(args)
	case "export":
		err = cmdExport(args)
	case "detect":
		err = cmdDetect(args)
	case "covert":
		err = cmdCovert(args, profile)
	case "runs":
		err = cmdRuns(args)
	case "top":
		err = cmdTop(args, profile)
	case "serve":
		err = cmdServe(runCtx, args)
	case "resume":
		err = cmdResume(runCtx, args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "amperebleed: unknown command %q\n", cmd)
		usage()
		return 2
	}
	// From here on the run flushes even when the command failed or was
	// interrupted: a checkpointed run's partial measurements are exactly
	// what `resume` and post-mortem ledger diffs need.
	code := 0
	if err != nil {
		fmt.Fprintf(os.Stderr, "amperebleed: %v\n", err)
		code = 1
	}
	if *traceOut != "" {
		if err := export.WriteFile(*traceOut, obs.Default.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "amperebleed: trace export: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "trace timeline written to %s\n", *traceOut)
	}
	if *ledgerPath != "" && cmd != "runs" {
		faultProfile := ""
		intensity := 0.0
		if profile != nil {
			faultProfile = *faultsName
			intensity = *faultIntensity
		}
		manifestCmd := cmd
		if runMeta.command != "" {
			manifestCmd = runMeta.command
		}
		if runMeta.faultProfile != "" {
			faultProfile = runMeta.faultProfile
			intensity = runMeta.faultIntensity
		}
		m := ledger.New(ledger.RunInfo{
			Tool:           "amperebleed",
			Command:        manifestCmd,
			Args:           args,
			Board:          "zcu102",
			Seed:           runMeta.seed,
			FaultProfile:   faultProfile,
			FaultIntensity: intensity,
			Workers:        runMeta.workers,
			RunID:          runMeta.runID,
			ParentRunID:    runMeta.parentRunID,
			ResumedShards:  runMeta.resumedShards,
			Started:        start,
			Wall:           time.Since(start),
		}, obs.Default.Snapshot())
		if err := ledger.Append(*ledgerPath, m); err != nil {
			fmt.Fprintf(os.Stderr, "amperebleed: ledger: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "run manifest appended to %s\n", *ledgerPath)
	}
	if *obsText {
		fmt.Println()
		if err := obs.Default.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "amperebleed: obs snapshot: %v\n", err)
			return 1
		}
	}
	return code
}

// parseFaults resolves the global -faults/-fault-intensity flags into a
// profile for the board configs, or nil when fault injection is off.
func parseFaults(name string, intensity float64) (*faults.Profile, error) {
	p, err := faults.Preset(name)
	if err != nil {
		return nil, err
	}
	p, err = p.Scale(intensity)
	if err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	return &p, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: amperebleed [-obs] [-obs-addr host:port] [-faults profile] <command> [flags]

global flags (before the command):
  -obs            print an observability snapshot (metrics, spans, events)
                  after the command completes
  -obs-addr ADDR  serve /metrics (OpenMetrics text), /metrics/stream
                  (SSE), /healthz, /debug/pprof, /debug/vars (expvar),
                  /trace (Chrome trace-event JSON) and /metrics/snapshot
                  (JSON) on ADDR while the command runs
  -obs-hold DUR   keep the -obs-addr server up DUR after the command
                  completes, so a finished run can still be scraped
  -history        record a metrics time series while the command runs;
                  the -obs-addr server then answers /metrics/range and
                  /metrics/query, /healthz judges rules over recent
                  windows, and top renders per-panel sparklines
  -history-interval DUR
                  sampling interval of the -history recorder (1s)
  -log-level L    structured log level: debug|info|warn|error (warn)
  -log-format F   structured log format: text|json (text)
  -faults NAME    inject sensor/scheduler faults into every simulated
                  board: none|flaky-sysfs|stale-sensor|noisy-sched|hostile
  -fault-intensity X
                  scale the profile's rates by X (default 1)
  -ledger FILE    append a run manifest (command, seed, fault profile,
                  channel-quality figures) to this JSONL run ledger
  -trace-out FILE write a Chrome trace-event timeline of the run
                  (load in Perfetto / chrome://tracing)

commands:
  boards        print the surveyed ARM-FPGA boards (Table I)
  sensors       discover hwmon sensors on a simulated ZCU102
  survey        rank sensors by observed variation while a victim runs
  watch         poll one sensor channel like the attack loop
  characterize  sweep the power-virus victim (Fig. 2)
  fingerprint   fingerprint DPU accelerators (Table III)
  rsa           recover RSA key Hamming weights (Fig. 4)
  mitigate      demonstrate the root-only mitigation (Sec. V)
  zoo           list the 39 DNN architectures of the fingerprinting suite
  profile       show where a model's inference time goes on the DPU
  leakage       run the TVLA fixed-vs-random leakage assessment
  applicability run the attack loop on all 8 Table I boards
  robustness    sweep a fault profile and plot accuracy vs fault rate
  export        snapshot the simulated sysfs tree to a real directory
  detect        watch the FPGA sensor and report workload transitions
  covert        transmit bits over the FPGA->CPU covert channel
  runs          list, filter and diff run-ledger manifests
  top           live terminal dashboard (-addr streams from a running
                -obs-addr server; without -addr a demo workload runs
                in-process; -once renders a single frame and exits)
  serve         HTTP job API (submit/status/cancel supervised runs with
                admission control; SIGTERM drains to round-barrier
                checkpoints)
  resume        continue an interrupted supervised run from its
                checkpoint file; completed shards replay, the result is
                byte-identical to an uninterrupted run`)
}

func cmdBoards() error {
	return report.RenderTableI(os.Stdout, board.Catalog())
}

// cmdRuns reads a run ledger and lists, filters, or diffs its
// manifests. Indices printed by the listing address the filtered view,
// so -diff composes with the filter flags.
func cmdRuns(args []string) error {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	path := fs.String("ledger", "runs.jsonl", "run ledger to read")
	tool := fs.String("tool", "", "filter: tool that wrote the run (amperebleed|benchtab)")
	command := fs.String("command", "", "filter: subcommand or experiment selector")
	boardName := fs.String("board", "", "filter: board name")
	prof := fs.String("profile", "", "filter: fault profile")
	seed := fs.Int64("seed", 0, "filter: root seed (0 = any)")
	diff := fs.String("diff", "", "diff two listed runs by index, e.g. 0,3")
	canonical := fs.Int("canonical", -1, "print the canonical JSON of one listed run by index (scheduling-independent; byte-comparable across worker counts and checkpoint/resume)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ms, err := ledger.Read(*path)
	if err != nil {
		return err
	}
	ms = ledger.Select(ms, ledger.Filter{
		Tool:         *tool,
		Command:      *command,
		Board:        *boardName,
		FaultProfile: *prof,
		Seed:         *seed,
	})
	if *canonical >= 0 {
		if *canonical >= len(ms) {
			return fmt.Errorf("-canonical index %d outside the %d filtered run(s)", *canonical, len(ms))
		}
		data, err := ledger.CanonicalJSON(ms[*canonical])
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
		return nil
	}
	if *diff == "" {
		return report.RenderRuns(os.Stdout, ms)
	}
	var i, j int
	if _, err := fmt.Sscanf(*diff, "%d,%d", &i, &j); err != nil {
		return fmt.Errorf("bad -diff %q (want two indices, e.g. 0,3)", *diff)
	}
	if i < 0 || j < 0 || i >= len(ms) || j >= len(ms) {
		return fmt.Errorf("-diff indices %d,%d outside the %d filtered run(s)", i, j, len(ms))
	}
	return report.RenderRunDiff(os.Stdout, ms[i], ms[j])
}

func cmdSensors(args []string) error {
	fs := flag.NewFlagSet("sensors", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "board seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	noteRun(*seed, 0)
	b, err := board.NewZCU102(board.Config{Seed: *seed})
	if err != nil {
		return err
	}
	b.Run(100 * time.Millisecond)
	atk, err := core.NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return err
	}
	sensors, err := atk.Discover()
	if err != nil {
		return err
	}
	tab := &report.Table{
		Title:   fmt.Sprintf("Discovered %d INA226 sensors (unprivileged)", len(sensors)),
		Headers: []string{"Dir", "Label", "Current (A)", "Voltage (V)", "Power (W)"},
	}
	for _, s := range sensors {
		row := []string{s.Dir, s.Label}
		for _, kind := range []core.Kind{core.Current, core.Voltage, core.Power} {
			probe, err := atk.Probe(core.Channel{Label: s.Label, Kind: kind})
			if err != nil {
				return err
			}
			v, err := probe()
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		tab.AddRow(row...)
	}
	return tab.Render(os.Stdout)
}

func cmdSurvey(args []string) error {
	fs := flag.NewFlagSet("survey", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "board seed")
	dur := fs.Duration("duration", 2*time.Second, "survey window")
	model := fs.String("victim", "ResNet-50", "zoo model the victim DPU runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	noteRun(*seed, 0)
	b, err := board.NewZCU102(board.Config{Seed: *seed})
	if err != nil {
		return err
	}
	queries, err := imagenet.New(b.Engine().Stream("queries"))
	if err != nil {
		return err
	}
	engine, err := dpu.NewEngine(dpu.EngineConfig{
		Queries:        queries,
		SetCPUFullUtil: b.CPUFull().SetUtil,
		SetCPULowUtil:  b.CPULow().SetUtil,
		SetDDRUtil:     b.DDR().SetUtil,
	})
	if err != nil {
		return err
	}
	if err := b.Fabric().Place(engine, b.Fabric().SpreadEvenly()); err != nil {
		return err
	}
	m, err := dpu.ZooModel(*model)
	if err != nil {
		return err
	}
	if err := engine.LoadModel(m); err != nil {
		return err
	}
	b.Run(100 * time.Millisecond)

	atk, err := core.NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return err
	}
	rows, err := core.Survey(b, atk, *dur)
	if err != nil {
		return err
	}
	tab := &report.Table{
		Title:   fmt.Sprintf("Sensor triage while victim runs %s (%v window)", *model, *dur),
		Headers: []string{"Rank", "Dir", "Label", "Mean (A)", "Std (A)", "Range (A)"},
	}
	for i, r := range rows {
		tab.AddRow(fmt.Sprintf("%d", i+1), r.Dir, r.Label,
			fmt.Sprintf("%.3f", r.MeanAmps),
			fmt.Sprintf("%.4f", r.StdAmps),
			fmt.Sprintf("%.3f", r.RangeAmps))
	}
	return tab.Render(os.Stdout)
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "board seed")
	label := fs.String("sensor", board.SensorFPGA, "sensor label")
	kind := fs.String("channel", "current", "channel: current|voltage|power")
	n := fs.Int("n", 20, "number of samples")
	load := fs.Int("virus-groups", 0, "active power-virus groups (victim load)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	noteRun(*seed, 0)
	b, err := board.NewZCU102(board.Config{Seed: *seed})
	if err != nil {
		return err
	}
	// Single-board command: the engine's clock stamps every log record
	// with the simulated time ("sim" attribute).
	olog.SetSimClock(b.Engine())
	if *load > 0 {
		if err := deployVirus(b, *load); err != nil {
			return err
		}
	}
	b.Run(100 * time.Millisecond)
	atk, err := core.NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return err
	}
	probe, err := atk.Probe(core.Channel{Label: *label, Kind: core.Kind(strings.ToLower(*kind))})
	if err != nil {
		return err
	}
	dev, err := b.Sensor(*label)
	if err != nil {
		return err
	}
	// The achieved sampling rate — the quantity the channel capacity
	// depends on — is recorded per poll and reported as the histogram's
	// running median, so transient stalls show up as a rate dip.
	rateHist := obs.H("attacker.sample_rate_hz")
	last := b.Engine().Now()
	for i := 0; i < *n; i++ {
		b.Run(dev.UpdateInterval())
		v, err := probe()
		if err != nil {
			return err
		}
		now := b.Engine().Now()
		dt := now - last
		last = now
		rate := 0.0
		if dt > 0 {
			rate = 1 / dt.Seconds()
			rateHist.Observe(rate)
		}
		fmt.Printf("t=%8s  %s %s = %.4f  rate=%5.1f Hz (p50 %.1f Hz over %d samples)\n",
			now.Round(time.Millisecond), *label, *kind, v,
			rate, rateHist.Quantile(0.5), rateHist.Count())
	}
	return nil
}

func deployVirus(b *board.ZCU102, groups int) error {
	array, err := virus.New(virus.Config{})
	if err != nil {
		return err
	}
	if err := array.Deploy(b.Fabric()); err != nil {
		return err
	}
	return array.SetActiveGroups(groups)
}

func cmdCharacterize(ctx context.Context, args []string, profile *faults.Profile) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	levels := fs.Int("levels", 0, "activation levels (0 = paper's 161)")
	samples := fs.Int("samples", 20, "hwmon updates averaged per level")
	noStab := fs.Bool("no-stabilizer", false, "disable the VCCINT stabilizer (ablation)")
	parallel := fs.Int("parallel", 0, "worker count of the sharded per-level sweep (0 = classic serial protocol; results are identical for any worker count >= 1)")
	checkpoint := fs.String("checkpoint", "", "run supervised with crash-safe checkpointing to this file (resumable with `amperebleed resume`)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := (runFlags{Parallel: *parallel}).validate(); err != nil {
		return err
	}
	noteRun(*seed, *parallel)
	if *checkpoint != "" {
		cfg, err := json.Marshal(kinds.CharacterizeJobConfig{
			Levels:            *levels,
			SamplesPerLevel:   *samples,
			DisableStabilizer: *noStab,
		})
		if err != nil {
			return err
		}
		spec := jobs.Spec{
			Kind:           "characterize",
			RunID:          fmt.Sprintf("characterize-%d-%d", os.Getpid(), time.Now().Unix()),
			Seed:           *seed,
			Board:          "zcu102",
			FaultProfile:   faultSpec.name,
			FaultIntensity: faultSpec.intensity,
			Config:         cfg,
			Workers:        *parallel,
			CheckpointPath: *checkpoint,
		}
		if faultSpec.name == "none" {
			spec.FaultProfile, spec.FaultIntensity = "", 0
		}
		out, agg, err := kindExecutor(ctx, spec)
		if out != nil {
			noteLineage(spec.RunID, out.ParentRunID, out.ResumedShards)
		}
		if err != nil {
			return err
		}
		for key, reason := range out.Quarantined {
			fmt.Fprintf(os.Stderr, "characterize: shard %s quarantined: %s\n", key, reason)
		}
		return renderAggregate(agg)
	}
	res, err := core.Characterize(core.CharacterizeConfig{
		Seed:              *seed,
		Levels:            *levels,
		SamplesPerLevel:   *samples,
		DisableStabilizer: *noStab,
		Parallelism:       *parallel,
		Faults:            profile,
	})
	if err != nil {
		return err
	}
	return report.RenderFig2(os.Stdout, res)
}

func cmdFingerprint(args []string, profile *faults.Profile) error {
	fs := flag.NewFlagSet("fingerprint", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	models := fs.String("models", "", "comma-separated zoo models (empty = all 39)")
	traces := fs.Int("traces", 10, "traces per model")
	dur := fs.Duration("duration", 5*time.Second, "capture duration")
	folds := fs.Int("folds", 10, "cross-validation folds")
	interval := fs.Duration("update-interval", 0, "hwmon update interval override (root)")
	save := fs.String("save", "", "write the collected captures to this JSON file")
	load := fs.String("load", "", "reuse captures from this JSON file instead of collecting")
	parallel := fs.Int("parallel", 0, "workers for trace capture and evaluation shards (0 = GOMAXPROCS; results are identical for any worker count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := (runFlags{Parallel: *parallel}).validate(); err != nil {
		return err
	}
	noteRun(*seed, *parallel)
	cfg := core.FingerprintConfig{
		Seed:           *seed,
		TracesPerModel: *traces,
		TraceDuration:  *dur,
		Folds:          *folds,
		UpdateInterval: *interval,
		Parallelism:    *parallel,
		Faults:         profile,
	}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}
	durations := []time.Duration{*dur}
	if *dur == 5*time.Second {
		durations = []time.Duration{time.Second, 2 * time.Second, 3 * time.Second,
			4 * time.Second, 5 * time.Second}
	}
	cfg.Durations = durations

	var captures []*core.Capture
	var err error
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		if captures, err = core.LoadCaptures(f); err != nil {
			return err
		}
	} else {
		if captures, err = core.CollectDPUTraces(cfg); err != nil {
			return err
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := core.SaveCaptures(f, captures); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("captures written to %s\n", *save)
	}
	res, err := core.EvaluateCaptures(cfg, captures)
	if err != nil {
		return err
	}
	return report.RenderTableIII(os.Stdout, res, core.SensitiveChannels(), durations)
}

func cmdRSA(args []string) error {
	fs := flag.NewFlagSet("rsa", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	samples := fs.Int("samples", 5000, "samples per key at 1 kHz")
	verify := fs.Bool("verify-datapath", false, "run the real modular arithmetic in the victim")
	if err := fs.Parse(args); err != nil {
		return err
	}
	noteRun(*seed, 0)
	res, err := core.RSAHammingWeight(core.RSAConfig{
		Seed:           *seed,
		Samples:        *samples,
		VerifyDatapath: *verify,
	})
	if err != nil {
		return err
	}
	return report.RenderFig4(os.Stdout, res)
}

func cmdZoo() error {
	tab := &report.Table{
		Title:   "Vitis-AI-style model zoo (39 architectures, 7 families)",
		Headers: []string{"Model", "Family", "Input", "GMACs", "MParams", "Layers"},
	}
	for _, m := range dpu.Zoo() {
		tab.AddRow(m.Name, m.Family,
			fmt.Sprintf("%dx%d", m.InputH, m.InputW),
			fmt.Sprintf("%.2f", float64(m.TotalMACs())/1e9),
			fmt.Sprintf("%.1f", float64(m.ParamBytes())/1e6),
			fmt.Sprintf("%d", len(m.Layers)))
	}
	return tab.Render(os.Stdout)
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	model := fs.String("model", "ResNet-50", "zoo model to profile")
	top := fs.Int("top", 10, "longest layers to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := dpu.ZooModel(*model)
	if err != nil {
		return err
	}
	p, err := dpu.ProfileModel(m, dpu.EngineConfig{})
	if err != nil {
		return err
	}
	return p.Render(os.Stdout, *top)
}

func cmdLeakage(args []string) error {
	fs := flag.NewFlagSet("leakage", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	samples := fs.Int("samples", 0, "samples per session (0 = default 2000)")
	ladder := fs.Bool("ladder", false, "assess the Montgomery-ladder victim")
	if err := fs.Parse(args); err != nil {
		return err
	}
	noteRun(*seed, 0)
	res, err := core.AssessRSALeakage(core.LeakageConfig{
		Seed:              *seed,
		SamplesPerSession: *samples,
		Countermeasure:    *ladder,
	})
	if err != nil {
		return err
	}
	victim := "square-and-multiply"
	if *ladder {
		victim = "Montgomery ladder"
	}
	fmt.Printf("TVLA fixed-vs-random, FPGA current, %s victim:\n", victim)
	fmt.Printf("  t = %+.1f (threshold 4.5)  leaks = %v\n", res.TVLA.T, res.TVLA.Leaks)
	fmt.Printf("  SNR across HW {1,512,1024} = %.2f\n", res.SNR)
	return nil
}

func cmdApplicability(args []string, profile *faults.Profile) error {
	fs := flag.NewFlagSet("applicability", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	parallel := fs.Int("parallel", 0, "workers for the per-board shards (0 = GOMAXPROCS; results are identical for any worker count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := (runFlags{Parallel: *parallel}).validate(); err != nil {
		return err
	}
	noteRun(*seed, *parallel)
	rows, err := core.Applicability(core.ApplicabilityConfig{
		Seed:        *seed,
		Parallelism: *parallel,
		Faults:      profile,
	})
	if err != nil {
		return err
	}
	return report.RenderApplicability(os.Stdout, rows)
}

func cmdRobustness(args []string) error {
	fs := flag.NewFlagSet("robustness", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	prof := fs.String("profile", "hostile", "fault profile to sweep")
	intensities := fs.String("intensities", "", "comma-separated scale factors (empty = 0,0.25,0.5,1,2)")
	models := fs.Int("models", 6, "zoo models in the reduced fingerprint run")
	traces := fs.Int("traces", 5, "traces per model")
	dur := fs.Duration("duration", time.Second, "capture duration")
	bits := fs.Int("bits", 32, "covert payload bits")
	parallel := fs.Int("parallel", 0, "workers for the sharded sub-experiments (0 = GOMAXPROCS; results are identical for any worker count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := (runFlags{Parallel: *parallel}).validate(); err != nil {
		return err
	}
	noteRun(*seed, *parallel)
	cfg := core.RobustnessConfig{
		Seed:           *seed,
		Profile:        *prof,
		Models:         *models,
		TracesPerModel: *traces,
		TraceDuration:  *dur,
		PayloadBits:    *bits,
		Parallelism:    *parallel,
	}
	if *intensities != "" {
		for _, s := range strings.Split(*intensities, ",") {
			var x float64
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &x); err != nil {
				return fmt.Errorf("bad intensity %q: %v", s, err)
			}
			cfg.Intensities = append(cfg.Intensities, x)
		}
	}
	res, err := core.Robustness(cfg)
	if err != nil {
		return err
	}
	return report.RenderRobustness(os.Stdout, res)
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "board seed")
	dir := fs.String("dir", "sysfs-snapshot", "output directory")
	asRoot := fs.Bool("root", false, "export with the root credential")
	if err := fs.Parse(args); err != nil {
		return err
	}
	noteRun(*seed, 0)
	b, err := board.NewZCU102(board.Config{Seed: *seed})
	if err != nil {
		return err
	}
	b.Run(100 * time.Millisecond)
	cred := sysfs.Nobody
	if *asRoot {
		cred = sysfs.Root
	}
	if err := b.Sysfs().Export(*dir, cred); err != nil {
		return err
	}
	fmt.Printf("sysfs snapshot written to %s\n", *dir)
	return nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "board seed")
	n := fs.Int("n", 60, "hwmon updates to watch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	noteRun(*seed, 0)
	b, err := board.NewZCU102(board.Config{Seed: *seed})
	if err != nil {
		return err
	}
	olog.SetSimClock(b.Engine())
	array, err := virus.New(virus.Config{})
	if err != nil {
		return err
	}
	if err := array.Deploy(b.Fabric()); err != nil {
		return err
	}
	atk, err := core.NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return err
	}
	probe, err := atk.Probe(core.Channel{Label: board.SensorFPGA, Kind: core.Current})
	if err != nil {
		return err
	}
	dev, err := b.Sensor(board.SensorFPGA)
	if err != nil {
		return err
	}
	interval := dev.UpdateInterval()
	det, err := core.NewDetector(core.DetectorConfig{}, interval)
	if err != nil {
		return err
	}
	// Scripted victim: on at 1/3 of the window, off at 2/3.
	for i := 0; i < *n; i++ {
		switch i {
		case *n / 3:
			_ = array.SetActiveGroups(60)
		case 2 * *n / 3:
			_ = array.SetActiveGroups(0)
		}
		b.Run(interval)
		v, err := probe()
		if err != nil {
			return err
		}
		if ev := det.Push(v); ev != nil {
			fmt.Printf("t=%8s  %s -> new level %.3f A\n",
				ev.At.Round(time.Millisecond), ev.Kind, ev.Level)
		}
	}
	fmt.Printf("%d transitions detected over %d samples\n", len(det.Events()), *n)
	return nil
}

func cmdCovert(args []string, profile *faults.Profile) error {
	fs := flag.NewFlagSet("covert", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "board seed")
	bits := fs.Int("bits", 128, "payload bits")
	symbol := fs.Int("symbol-updates", 1, "symbol duration in sensor updates")
	interval := fs.Duration("update-interval", 0, "sensor update interval override (root)")
	parallel := fs.Int("parallel", 0, "workers of the multi-channel chunked protocol (0 = classic single transmission; results are identical for any worker count >= 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := (runFlags{Parallel: *parallel}).validate(); err != nil {
		return err
	}
	noteRun(*seed, *parallel)
	res, err := core.CovertTransmit(core.CovertConfig{
		Seed:           *seed,
		PayloadBits:    *bits,
		SymbolUpdates:  *symbol,
		UpdateInterval: *interval,
		Parallelism:    *parallel,
		Faults:         profile,
	})
	if err != nil {
		return err
	}
	fmt.Printf("covert channel: %d bits at %v/symbol -> %.1f bps, BER %.4f (%d errors)\n",
		res.BitsSent, res.SymbolPeriod, res.Throughput, res.BER(), res.BitErrors)
	return nil
}

func cmdMitigate(args []string) error {
	fs := flag.NewFlagSet("mitigate", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "board seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	noteRun(*seed, 0)
	res, err := core.Mitigation(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("before mitigation: unprivileged attacker reads FPGA current = %.3f A\n", res.BeforeAttacker)
	fmt.Printf("after  mitigation: unprivileged read fails with: %v\n", res.AfterAttackerErr)
	fmt.Printf("after  mitigation: root monitoring still reads   = %.3f A\n", res.AfterRoot)
	fmt.Printf("mitigation effective: %v\n", res.Effective())
	return nil
}
