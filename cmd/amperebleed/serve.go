package main

// The supervised-job side of the CLI: `serve` exposes the job engine
// over HTTP with admission control and graceful drain, `resume` picks
// an interrupted run back up from its checkpoint file.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/jobs/kinds"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/report"
	"repro/internal/runner"
)

// kindExecutor adapts the kind registry to the job server: plan the
// shard keys, run them supervised, fold the outcome back into the
// experiment's result type.
func kindExecutor(ctx context.Context, spec jobs.Spec) (*jobs.Outcome, any, error) {
	kind, err := kinds.Lookup(spec.Kind)
	if err != nil {
		return nil, nil, err
	}
	keys, err := kind.Plan(spec)
	if err != nil {
		return nil, nil, err
	}
	out, err := jobs.Run(ctx, spec, keys, func(ctx context.Context, info runner.Info) (json.RawMessage, error) {
		return kind.Shard(ctx, spec, info)
	})
	if err != nil {
		return out, nil, err
	}
	agg, err := kind.Aggregate(spec, out)
	return out, agg, err
}

// cmdServe runs the HTTP job API until the run context is cancelled
// (first SIGINT/SIGTERM), then drains: running jobs are cancelled and
// left checkpointed at their last round barrier, ready for `resume`.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "address the job API listens on")
	maxJobs := fs.Int("max-jobs", 2, "jobs running concurrently")
	queue := fs.Int("queue", 4, "admission queue depth; submissions beyond it are shed")
	rate := fs.Float64("submit-rate", 0, "submissions per second accepted (token bucket; 0 = unlimited)")
	burst := fs.Int("submit-burst", 0, "token-bucket burst for -submit-rate (0 = rate+1)")
	dir := fs.String("checkpoint-dir", "checkpoints", "directory for per-job checkpoints (empty = no checkpointing)")
	drainFor := fs.Duration("drain-timeout", 10*time.Second, "how long the drain waits for jobs to reach a round barrier")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
	}
	s, err := jobs.NewServer(jobs.ServerConfig{
		Executor:      kindExecutor,
		MaxConcurrent: *maxJobs,
		QueueDepth:    *queue,
		SubmitPerSec:  *rate,
		SubmitBurst:   *burst,
		CheckpointDir: *dir,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "serve: job API on http://%s/jobs (kinds: %v)\n", ln.Addr(), kinds.Names())
	if rec := obs.Default.History(); rec != nil {
		fmt.Fprintf(os.Stderr, "serve: metrics history recording every %v (%s clock); the -obs-addr server answers /metrics/range and /metrics/query\n",
			rec.Interval(), rec.ClockName())
	} else {
		fmt.Fprintln(os.Stderr, "serve: metrics history off (enable with the global -history flag)")
	}

	log := olog.L("serve")
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	log.Info("draining", "timeout", *drainFor)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		log.Warn("drain incomplete", "err", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutCtx)
	fmt.Fprintln(os.Stderr, "serve: drained; interrupted jobs can be picked up with `amperebleed resume <checkpoint>`")
	return nil
}

// cmdResume restarts a supervised run from its checkpoint file. The
// job's identity (kind, seed, board, fault profile, config) comes from
// the checkpoint itself; completed shards replay from the file and only
// the remainder executes, so the final result is byte-identical to an
// uninterrupted run.
func cmdResume(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("resume", flag.ExitOnError)
	workers := fs.Int("parallel", 0, "workers for the remaining shards (0 = GOMAXPROCS; results are identical for any worker count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := (runFlags{Parallel: *workers}).validate(); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: amperebleed resume [-parallel N] <checkpoint-file>")
	}
	path := fs.Arg(0)
	cp, err := jobs.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	spec := jobs.Spec{
		Kind:           cp.Kind,
		RunID:          fmt.Sprintf("resume-%d-%d", os.Getpid(), time.Now().Unix()),
		Seed:           cp.Seed,
		Board:          cp.Board,
		FaultProfile:   cp.FaultProfile,
		FaultIntensity: cp.FaultIntensity,
		Config:         cp.Config,
		Workers:        *workers,
		CheckpointPath: path,
	}
	noteRun(cp.Seed, *workers)
	noteResumedSpec(cp.Kind, cp.FaultProfile, cp.FaultIntensity)
	done := len(cp.Completed) + len(cp.Quarantined)
	fmt.Fprintf(os.Stderr, "resume: %s run %s at %d/%d shards (%d quarantined)\n",
		cp.Kind, cp.RunID, done, len(cp.Keys), len(cp.Quarantined))

	out, agg, err := kindExecutor(ctx, spec)
	if out != nil {
		noteLineage(spec.RunID, out.ParentRunID, out.ResumedShards)
	}
	if err != nil {
		return err
	}
	for key, reason := range out.Quarantined {
		fmt.Fprintf(os.Stderr, "resume: shard %s quarantined: %s\n", key, reason)
	}
	return renderAggregate(agg)
}

// renderAggregate routes a kind's aggregate to the experiment's usual
// report renderer.
func renderAggregate(agg any) error {
	switch v := agg.(type) {
	case *core.CharacterizeResult:
		return report.RenderFig2(os.Stdout, v)
	case []core.BoardApplicability:
		return report.RenderApplicability(os.Stdout, v)
	default:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
}
