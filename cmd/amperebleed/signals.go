package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// interruptExitCode is the conventional 128+SIGINT status reported when
// a second signal aborts the shutdown grace period.
const interruptExitCode = 130

// notifyInterrupts subscribes a channel to SIGINT/SIGTERM and returns
// it with its unsubscribe function. Split from watchSignals so tests
// can drive the watcher with a fake channel.
func notifyInterrupts() (chan os.Signal, func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch, func() { signal.Stop(ch) }
}

// watchSignals implements the CLI's two-stage shutdown: the first
// signal on ch cancels the returned context so the running command can
// wind down and the tail of main still flushes the ledger, trace and
// checkpoints; a second signal gives up on graceful shutdown and calls
// exit. The returned stop function detaches the watcher (idempotent,
// safe to defer).
func watchSignals(parent context.Context, ch <-chan os.Signal, exit func(int)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "amperebleed: %v: shutting down (again to abort)\n", sig)
			cancel()
		case <-ctx.Done():
			return
		}
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "amperebleed: %v: aborted\n", sig)
			exit(interruptExitCode)
		case <-parent.Done():
		}
	}()
	return ctx, cancel
}
