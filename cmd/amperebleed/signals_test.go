package main

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestWatchSignalsFirstSignalCancels(t *testing.T) {
	ch := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, cancel := watchSignals(context.Background(), ch, func(code int) { exited <- code })
	defer cancel()

	select {
	case <-ctx.Done():
		t.Fatal("context cancelled before any signal")
	default:
	}
	ch <- syscall.SIGTERM
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not cancel the run context")
	}
	select {
	case code := <-exited:
		t.Fatalf("first signal hard-exited with %d", code)
	default:
	}
}

func TestWatchSignalsSecondSignalHardExits(t *testing.T) {
	ch := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	_, cancel := watchSignals(context.Background(), ch, func(code int) { exited <- code })
	defer cancel()

	ch <- syscall.SIGINT
	ch <- syscall.SIGINT
	select {
	case code := <-exited:
		if code != interruptExitCode {
			t.Errorf("exit code = %d, want %d", code, interruptExitCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not hard-exit")
	}
}

func TestWatchSignalsNormalExitStopsWatcher(t *testing.T) {
	ch := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, cancel := watchSignals(context.Background(), ch, func(code int) { exited <- code })
	// The command finished without a signal: cancel detaches the
	// watcher, and a late signal must not hard-exit.
	cancel()
	<-ctx.Done()
	ch <- syscall.SIGINT
	select {
	case code := <-exited:
		t.Fatalf("signal after normal exit hard-exited with %d", code)
	case <-time.After(50 * time.Millisecond):
	}
}
