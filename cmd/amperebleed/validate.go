package main

import (
	"fmt"
	"math"
	"time"
)

// runFlags gathers the flag values every command path must validate
// the same way, up front — before a board is built or a campaign
// starts, so a bad combination fails in microseconds with a usage
// error instead of minutes later deep inside a sharded run (or, worse,
// silently: a negative -fault-intensity used to pass unchecked when
// -faults was "none", because the only validation lived in
// faults.Scale which never ran for a disabled profile).
//
// The zero value is valid; each caller fills in only the flags it
// owns. Property-test flag combinations (-check.seed/-check.iters)
// are validated by internal/check itself, which owns those flags.
type runFlags struct {
	// FaultIntensity is the global -fault-intensity scale factor.
	FaultIntensity float64
	// ObsHold is the global -obs-hold duration.
	ObsHold time.Duration
	// Parallel is a subcommand's -parallel worker count, where 0
	// selects the command's documented default (serial protocol or
	// GOMAXPROCS).
	Parallel int
	// History is the global -history switch; HistoryInterval is the
	// recorder's -history-interval, only constrained when History is on.
	History         bool
	HistoryInterval time.Duration
}

// validate returns the first problem found, phrased in terms of the
// offending flag.
func (f runFlags) validate() error {
	if math.IsNaN(f.FaultIntensity) || math.IsInf(f.FaultIntensity, 0) {
		return fmt.Errorf("-fault-intensity must be finite (got %v)", f.FaultIntensity)
	}
	if f.FaultIntensity < 0 {
		return fmt.Errorf("-fault-intensity must be >= 0 (got %v)", f.FaultIntensity)
	}
	if f.ObsHold < 0 {
		return fmt.Errorf("-obs-hold must be >= 0 (got %v)", f.ObsHold)
	}
	if f.Parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 selects the command's default; got %d)", f.Parallel)
	}
	if f.History && f.HistoryInterval <= 0 {
		return fmt.Errorf("-history-interval must be > 0 when -history is on (got %v)", f.HistoryInterval)
	}
	return nil
}
