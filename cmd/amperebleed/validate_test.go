package main

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestRunFlagsValidate(t *testing.T) {
	cases := []struct {
		name    string
		flags   runFlags
		wantErr string // empty = valid
	}{
		{name: "zero value", flags: runFlags{}},
		{name: "typical", flags: runFlags{FaultIntensity: 1, ObsHold: time.Second, Parallel: 8}},
		{name: "zero intensity disables faults", flags: runFlags{FaultIntensity: 0}},
		{name: "fractional intensity", flags: runFlags{FaultIntensity: 0.25}},
		{name: "negative intensity", flags: runFlags{FaultIntensity: -0.5}, wantErr: "-fault-intensity must be >= 0"},
		{name: "NaN intensity", flags: runFlags{FaultIntensity: math.NaN()}, wantErr: "-fault-intensity must be finite"},
		{name: "Inf intensity", flags: runFlags{FaultIntensity: math.Inf(1)}, wantErr: "-fault-intensity must be finite"},
		{name: "negative obs-hold", flags: runFlags{ObsHold: -time.Second}, wantErr: "-obs-hold must be >= 0"},
		{name: "negative parallel", flags: runFlags{Parallel: -1}, wantErr: "-parallel must be >= 0"},
		{name: "parallel zero is the default selector", flags: runFlags{Parallel: 0}},
		{name: "first error wins", flags: runFlags{FaultIntensity: -1, Parallel: -1}, wantErr: "-fault-intensity"},
		{name: "history with interval", flags: runFlags{History: true, HistoryInterval: time.Second}},
		{name: "history without interval", flags: runFlags{History: true}, wantErr: "-history-interval must be > 0"},
		{name: "history negative interval", flags: runFlags{History: true, HistoryInterval: -time.Second}, wantErr: "-history-interval must be > 0"},
		{name: "interval without history is ignored", flags: runFlags{HistoryInterval: -time.Second}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.flags.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", tc.flags, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%+v) = nil, want error containing %q", tc.flags, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%+v) = %q, want it to contain %q", tc.flags, err, tc.wantErr)
			}
		})
	}
}
