package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/top"
	"repro/internal/sysfs"
)

// cmdTop is the live terminal dashboard. With -addr it consumes the SSE
// /metrics/stream of a running `amperebleed -obs-addr ...` process (any
// command, even in another terminal or machine); without -addr it runs
// a small in-process demo workload — one pass through every pipeline
// stage the panels cover — and renders from the Default registry.
func cmdTop(args []string, profile *faults.Profile) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "", "host:port or URL of a running -obs-addr server (empty = in-process demo workload)")
	interval := fs.Duration("interval", time.Second, "dashboard refresh interval")
	once := fs.Bool("once", false, "render a single frame and exit (no ANSI cursor control)")
	seed := fs.Int64("seed", 1, "demo workload seed (in-process mode)")
	histWindow := fs.Duration("history-window", 10*time.Second, "aggregate window of the sparkline hist lines (needs a -history server, or the global -history flag in-process)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	noteRun(*seed, 0)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *addr != "" {
		base := *addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		// History is best-effort: a 501 (server without -history) turns
		// the hist lines off for good; transient fetch errors skip one
		// frame's history rather than killing the dashboard.
		histDisabled := false
		fetchHist := func() *top.History {
			if histDisabled {
				return nil
			}
			h, err := top.FetchHistory(ctx, base, top.HistorySeries, *histWindow, 0)
			if errors.Is(err, top.ErrHistoryDisabled) {
				histDisabled = true
				return nil
			}
			if err != nil {
				return nil
			}
			return h
		}
		if *once {
			snap, err := top.FetchSnapshot(ctx, base)
			if err != nil {
				return err
			}
			return printFrame(snap, base, fetchHist())
		}
		sc := top.NewScreen(os.Stdout)
		defer sc.Close()
		var prev *obs.Snapshot
		err := top.Stream(ctx, base, *interval, func(s obs.Snapshot) error {
			sc.Draw(top.Frame(s, prev, top.Options{Source: base, History: fetchHist()}))
			cp := s
			prev = &cp
			return nil
		})
		if errors.Is(err, context.Canceled) {
			err = nil
		}
		return err
	}

	// In-process mode reads history straight from the Default registry's
	// recorder when the global -history flag started one; without it
	// localHist returns nil and the dashboard renders historyless.
	localHist := func() *top.History {
		return top.HistoryFromRecorder(obs.Default.History(), top.HistorySeries, *histWindow, 0)
	}
	if *once {
		if err := topDemo(ctx, *seed, profile); err != nil {
			return err
		}
		return printFrame(obs.Default.Snapshot(), "in-process demo", localHist())
	}

	// Live in-process mode: the demo runs in the background while the
	// dashboard draws from a registry subscription at the refresh rate.
	done := make(chan error, 1)
	go func() { done <- topDemo(ctx, *seed, profile) }()
	sub := obs.Subscribe(*interval, 0)
	defer sub.Close()
	sc := top.NewScreen(os.Stdout)
	defer sc.Close()
	var prev *obs.Snapshot
	draw := func(s obs.Snapshot) {
		sc.Draw(top.Frame(s, prev, top.Options{Source: "in-process demo", History: localHist()}))
		cp := s
		prev = &cp
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-done:
			draw(obs.Default.Snapshot())
			return err
		case s := <-sub.C():
			draw(s)
		}
	}
}

// printFrame renders one dashboard frame as plain text (for -once).
func printFrame(s obs.Snapshot, source string, hist *top.History) error {
	for _, l := range top.Frame(s, nil, top.Options{Source: source, History: hist}) {
		if _, err := fmt.Println(l); err != nil {
			return err
		}
	}
	return nil
}

// topDemo exercises every pipeline stage the dashboard panels cover,
// sized to finish in a few seconds: a resilient sampling loop on the
// FPGA rail, a TVLA leakage assessment, a covert transmission, and a
// sharded characterize sweep for the runner panel. The global fault
// profile applies throughout, so `-faults hostile top` shows the fault
// counters moving.
func topDemo(ctx context.Context, seed int64, profile *faults.Profile) error {
	b, err := board.NewZCU102(board.Config{Seed: seed, Faults: profile})
	if err != nil {
		return err
	}
	b.Run(100 * time.Millisecond)
	atk, err := core.NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return err
	}
	dev, err := b.Sensor(board.SensorFPGA)
	if err != nil {
		return err
	}
	smp, err := core.NewSampler(b, atk,
		core.Channel{Label: board.SensorFPGA, Kind: core.Current}, dev.UpdateInterval())
	if err != nil {
		return err
	}
	rateHist := obs.H("attacker.sample_rate_hz")
	last := b.Engine().Now()
	for i := 0; i < 200; i++ {
		if _, err := smp.Sample(ctx); err != nil && !errors.Is(err, core.ErrSampleLost) {
			return err
		}
		now := b.Engine().Now()
		if dt := now - last; dt > 0 {
			rateHist.Observe(1 / dt.Seconds())
		}
		last = now
	}

	if _, err := core.AssessRSALeakage(core.LeakageConfig{
		Seed: seed, SamplesPerSession: 400,
	}); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	if _, err := core.CovertTransmit(core.CovertConfig{
		Seed: seed, PayloadBits: 32, Faults: profile,
	}); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	if _, err := core.Characterize(core.CharacterizeConfig{
		Seed: seed, Levels: 9, SamplesPerLevel: 5, Parallelism: 2, Faults: profile,
	}); err != nil {
		return err
	}
	return ctx.Err()
}
