// Command benchtab regenerates every table and figure of the paper's
// evaluation on the simulated ZCU102 and prints them as text artifacts.
//
// Usage:
//
//	benchtab -exp all                 # everything, reduced budgets
//	benchtab -exp fig2 -samples 200   # Fig. 2 with more averaging
//	benchtab -exp table3 -traces 12 -paper-scale
//
// The -paper-scale flag raises the capture budgets to the paper's
// (10,000 samples per level for Fig. 2; 100,000 samples per key for
// Fig. 4); expect long runtimes.
//
// With -json FILE, benchtab also writes a machine-readable perf
// artifact (the obs metrics snapshot plus derived engine throughput and
// attacker sample-rate percentiles), so successive BENCH_*.json files
// track the simulator's performance trajectory across changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/report"
)

// parallelBench compares the sharded runner against the serial path on
// the cross-board applicability sweep: the same shard set executed with
// one worker and with N, with aggregate engine throughput for each. The
// rows are bit-identical by construction (the runner derives every
// shard's seed from the campaign key, not the schedule), so the two
// runs differ only in wall clock.
type parallelBench struct {
	// Workers of the parallel run (the -parallel flag, or GOMAXPROCS).
	Workers int `json:"workers"`
	// SerialTicksPerSec is the sweep's engine throughput at one worker.
	SerialTicksPerSec float64 `json:"serial_ticks_per_sec"`
	// ParallelTicksPerSec is the throughput at Workers workers.
	ParallelTicksPerSec float64 `json:"parallel_ticks_per_sec"`
	// Speedup is ParallelTicksPerSec / SerialTicksPerSec. On a
	// single-CPU host this hovers near 1.0; it only reflects the
	// hardware the artifact was produced on, so it is reported, never
	// asserted.
	Speedup float64 `json:"speedup"`
}

// perfArtifact is the schema of the -json output.
type perfArtifact struct {
	// Experiment is the -exp selector the artifact covers.
	Experiment string `json:"experiment"`
	// Seed is the root seed.
	Seed int64 `json:"seed"`
	// WallSeconds is the total wall-clock runtime.
	WallSeconds float64 `json:"wall_seconds"`
	// SimTicks is the number of engine ticks executed across all boards.
	SimTicks int64 `json:"sim_ticks"`
	// TicksPerSec is SimTicks over WallSeconds (aggregate engine
	// throughput; parallel boards push it above one engine's rate).
	TicksPerSec float64 `json:"ticks_per_sec"`
	// SimWallRatio is total simulated time over total in-engine wall
	// time: how much faster than real time the simulation ran.
	SimWallRatio float64 `json:"sim_wall_ratio"`
	// SampleRate summarizes the attacker's achieved sampling rate (Hz).
	SampleRate obs.HistogramStat `json:"attacker_sample_rate_hz"`
	// Parallel is the serial-vs-parallel cross-board sweep comparison.
	Parallel *parallelBench `json:"parallel,omitempty"`
	// Obs is the full metrics snapshot.
	Obs obs.Snapshot `json:"obs"`
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|table2|fig2|fig3|table3|fig4|applicability|tvla|mitigation|all")
		seed       = flag.Int64("seed", 1, "root seed for every experiment")
		samples    = flag.Int("samples", 0, "samples per level (fig2) / per key (fig4); 0 = default budget")
		traces     = flag.Int("traces", 10, "traces per model for table3")
		paperScale = flag.Bool("paper-scale", false, "use the paper's full capture budgets (slow)")
		jsonOut    = flag.String("json", "", "write a JSON perf artifact (obs snapshot + derived rates), e.g. BENCH_obs.json")
		parallel   = flag.Int("parallel", 0, "workers for sharded experiments (0 = GOMAXPROCS; results are identical for any worker count)")
		faultsName = flag.String("faults", "none", "fault profile injected into every simulated board: "+strings.Join(faults.PresetNames(), "|"))
	)
	flag.Parse()
	start := time.Now()
	var profile *faults.Profile
	if p, err := faults.Preset(*faultsName); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(2)
	} else if p.Enabled() {
		profile = &p
	}

	run := func(name string, f func() error) {
		switch *exp {
		case name, "all":
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}

	run("table1", func() error {
		return report.RenderTableI(os.Stdout, board.Catalog())
	})
	run("table2", func() error {
		return report.RenderTableII(os.Stdout, board.SensitiveSensors())
	})
	run("fig2", func() error {
		n := *samples
		if n == 0 {
			n = 20
		}
		if *paperScale {
			n = 10000
		}
		res, err := core.Characterize(core.CharacterizeConfig{Seed: *seed, SamplesPerLevel: n, Faults: profile})
		if err != nil {
			return err
		}
		return report.RenderFig2(os.Stdout, res)
	})
	run("fig3", func() error {
		channels := []core.Channel{
			{Label: board.SensorCPUFull, Kind: core.Current},
			{Label: board.SensorCPULow, Kind: core.Current},
			{Label: board.SensorFPGA, Kind: core.Current},
			{Label: board.SensorDDR, Kind: core.Current},
		}
		caps, err := core.CollectDPUTraces(core.FingerprintConfig{
			Seed:           *seed,
			Models:         []string{"MobileNet-V1", "SqueezeNet-1.1", "EfficientNet-Lite0", "Inception-V3", "ResNet-50", "VGG-19"},
			TracesPerModel: 1,
			TraceDuration:  5 * time.Second,
			Durations:      []time.Duration{5 * time.Second},
			Folds:          1,
			Channels:       channels,
			Parallelism:    *parallel,
			Faults:         profile,
		})
		if err != nil {
			return err
		}
		return report.RenderFig3(os.Stdout, caps, channels)
	})
	run("table3", func() error {
		res, err := core.Fingerprint(core.FingerprintConfig{
			Seed:           *seed,
			TracesPerModel: *traces,
			Parallelism:    *parallel,
			Faults:         profile,
		})
		if err != nil {
			return err
		}
		return report.RenderTableIII(os.Stdout, res, core.SensitiveChannels(),
			[]time.Duration{time.Second, 2 * time.Second, 3 * time.Second,
				4 * time.Second, 5 * time.Second})
	})
	run("fig4", func() error {
		n := *samples
		if n == 0 {
			n = 5000
		}
		if *paperScale {
			n = 100000
		}
		res, err := core.RSAHammingWeight(core.RSAConfig{Seed: *seed, Samples: n})
		if err != nil {
			return err
		}
		return report.RenderFig4(os.Stdout, res)
	})
	run("applicability", func() error {
		rows, err := core.Applicability(core.ApplicabilityConfig{
			Seed:        *seed,
			Parallelism: *parallel,
			Faults:      profile,
		})
		if err != nil {
			return err
		}
		return report.RenderApplicability(os.Stdout, rows)
	})
	run("tvla", func() error {
		plain, err := core.AssessRSALeakage(core.LeakageConfig{Seed: *seed})
		if err != nil {
			return err
		}
		ladder, err := core.AssessRSALeakage(core.LeakageConfig{Seed: *seed, Countermeasure: true})
		if err != nil {
			return err
		}
		fmt.Printf("TVLA fixed-vs-random over FPGA current:\n")
		fmt.Printf("  square-and-multiply victim: t=%+.1f leaks=%v SNR=%.0f\n",
			plain.TVLA.T, plain.TVLA.Leaks, plain.SNR)
		fmt.Printf("  Montgomery-ladder victim:   t=%+.1f leaks=%v SNR=%.2f\n",
			ladder.TVLA.T, ladder.TVLA.Leaks, ladder.SNR)
		return nil
	})
	run("mitigation", func() error {
		res, err := core.Mitigation(*seed)
		if err != nil {
			return err
		}
		fmt.Printf("Mitigation (Sec. V): before: attacker reads %.3f A; after restriction: attacker error %q; root still reads %.3f A; effective=%v\n",
			res.BeforeAttacker, res.AfterAttackerErr, res.AfterRoot, res.Effective())
		return nil
	})

	switch *exp {
	case "table1", "table2", "fig2", "fig3", "table3", "fig4",
		"applicability", "tvla", "mitigation", "all":
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	if *jsonOut != "" {
		pb, err := benchParallel(*seed, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: parallel bench: %v\n", err)
			os.Exit(1)
		}
		if err := writeArtifact(*jsonOut, *exp, *seed, time.Since(start), pb); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("perf artifact written to %s\n", *jsonOut)
	}
}

// benchParallel runs the cross-board applicability sweep twice — once
// on a single worker, once on the requested worker count — and measures
// aggregate engine throughput for each from the obs sim.ticks delta.
func benchParallel(seed int64, workers int) (*parallelBench, error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	measure := func(w int) (float64, error) {
		before := obs.Default.Snapshot().Counter("sim.ticks")
		start := time.Now()
		if _, err := core.Applicability(core.ApplicabilityConfig{
			Seed:        seed,
			Parallelism: w,
		}); err != nil {
			return 0, err
		}
		wall := time.Since(start).Seconds()
		ticks := obs.Default.Snapshot().Counter("sim.ticks") - before
		if wall <= 0 {
			return 0, nil
		}
		return float64(ticks) / wall, nil
	}
	serial, err := measure(1)
	if err != nil {
		return nil, err
	}
	par, err := measure(workers)
	if err != nil {
		return nil, err
	}
	pb := &parallelBench{
		Workers:             workers,
		SerialTicksPerSec:   serial,
		ParallelTicksPerSec: par,
	}
	if serial > 0 {
		pb.Speedup = par / serial
	}
	return pb, nil
}

// writeArtifact snapshots the obs registry and derives the headline
// throughput numbers the perf trajectory tracks.
func writeArtifact(path, exp string, seed int64, wall time.Duration, pb *parallelBench) error {
	snap := obs.Default.Snapshot()
	art := perfArtifact{
		Experiment:  exp,
		Seed:        seed,
		WallSeconds: wall.Seconds(),
		SimTicks:    snap.Counter("sim.ticks"),
		Parallel:    pb,
		Obs:         snap,
	}
	if wall > 0 {
		art.TicksPerSec = float64(art.SimTicks) / wall.Seconds()
	}
	if engineWall := snap.Counter("sim.walltime_ns"); engineWall > 0 {
		art.SimWallRatio = float64(snap.Counter("sim.simtime_ns")) / float64(engineWall)
	}
	if h, ok := snap.Histogram("attacker.sample_rate_hz"); ok {
		art.SampleRate = h
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
