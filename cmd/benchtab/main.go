// Command benchtab regenerates every table and figure of the paper's
// evaluation on the simulated ZCU102 and prints them as text artifacts.
//
// Usage:
//
//	benchtab -exp all                 # everything, reduced budgets
//	benchtab -exp fig2 -samples 200   # Fig. 2 with more averaging
//	benchtab -exp table3 -traces 12 -paper-scale
//
// The -paper-scale flag raises the capture budgets to the paper's
// (10,000 samples per level for Fig. 2; 100,000 samples per key for
// Fig. 4); expect long runtimes.
//
// With -json FILE, benchtab also writes a machine-readable perf
// artifact (the obs metrics snapshot plus derived engine throughput and
// attacker sample-rate percentiles), so successive BENCH_*.json files
// track the simulator's performance trajectory across changes.
//
// -repeat N runs the selected experiments N times (experiment output is
// printed once; later repeats only feed the artifact statistics), and
// -baseline FILE -compare renders a benchstat-style report against an
// earlier artifact. The comparison always gates hard on deterministic
// counter drift — for a fixed seed the simulation must execute exactly
// the same work — while wall-clock rates are report-only unless
// -regress-pct sets a threshold.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/ledger"
	"repro/internal/obs/olog"
	"repro/internal/perf"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|table2|fig2|fig3|table3|fig4|applicability|tvla|mitigation|all")
		seed       = flag.Int64("seed", 1, "root seed for every experiment")
		samples    = flag.Int("samples", 0, "samples per level (fig2) / per key (fig4); 0 = default budget")
		traces     = flag.Int("traces", 10, "traces per model for table3")
		paperScale = flag.Bool("paper-scale", false, "use the paper's full capture budgets (slow)")
		jsonOut    = flag.String("json", "", "write a JSON perf artifact (obs snapshot + derived rates), e.g. BENCH_obs.json")
		parallel   = flag.Int("parallel", 0, "workers for sharded experiments (0 = GOMAXPROCS; results are identical for any worker count)")
		faultsName = flag.String("faults", "none", "fault profile injected into every simulated board: "+strings.Join(faults.PresetNames(), "|"))
		repeat     = flag.Int("repeat", 1, "run the experiments this many times for rate statistics (output printed once)")
		baseline   = flag.String("baseline", "", "baseline perf artifact (BENCH_*.json) for -compare")
		compare    = flag.Bool("compare", false, "compare this run's artifact against -baseline and exit non-zero on drift/regression")
		regressPct = flag.Float64("regress-pct", 0, "fail when a wall-clock rate regresses beyond this percent (0 = rates report-only)")
		ledgerPath = flag.String("ledger", "", "append a run manifest to this JSONL run ledger")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run (load in Perfetto)")
		logLevel   = flag.String("log-level", "warn", "structured log level: debug|info|warn|error")
		logFormat  = flag.String("log-format", "text", "structured log format: text|json")
		history    = flag.Bool("history", false, "record a metrics time series while the experiments run (the obs.tsdb recorder; its lazily registered self-metrics stay out of the deterministic-counter gate)")
		historyInt = flag.Duration("history-interval", obs.DefaultHistoryInterval, "sampling interval of the -history recorder")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	if err := olog.Setup(*logLevel, *logFormat, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(2)
	}
	olog.SetRunID(fmt.Sprintf("benchtab-%s-%d-%d", *exp, os.Getpid(), time.Now().Unix()))

	switch *exp {
	case "table1", "table2", "fig2", "fig3", "table3", "fig4",
		"applicability", "tvla", "mitigation", "all":
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if *repeat < 1 {
		fmt.Fprintln(os.Stderr, "benchtab: -repeat must be at least 1")
		os.Exit(2)
	}
	if *compare && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchtab: -compare requires -baseline FILE")
		os.Exit(2)
	}
	if *history {
		if *historyInt <= 0 {
			fmt.Fprintf(os.Stderr, "benchtab: -history-interval must be > 0 (got %v)\n", *historyInt)
			os.Exit(2)
		}
		histCtx, stopHistory := context.WithCancel(context.Background())
		defer stopHistory()
		obs.StartRecorder(histCtx, obs.RecorderOptions{Interval: *historyInt})
	}

	start := time.Now()
	var profile *faults.Profile
	if p, err := faults.Preset(*faultsName); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(2)
	} else if p.Enabled() {
		profile = &p
	}

	experiments := func(out io.Writer) error {
		var firstErr error
		run := func(name string, f func() error) {
			if firstErr != nil {
				return
			}
			switch *exp {
			case name, "all":
				if err := f(); err != nil {
					firstErr = fmt.Errorf("%s: %w", name, err)
					return
				}
				fmt.Fprintln(out)
			}
		}

		run("table1", func() error {
			return report.RenderTableI(out, board.Catalog())
		})
		run("table2", func() error {
			return report.RenderTableII(out, board.SensitiveSensors())
		})
		run("fig2", func() error {
			n := *samples
			if n == 0 {
				n = 20
			}
			if *paperScale {
				n = 10000
			}
			res, err := core.Characterize(core.CharacterizeConfig{Seed: *seed, SamplesPerLevel: n, Faults: profile})
			if err != nil {
				return err
			}
			return report.RenderFig2(out, res)
		})
		run("fig3", func() error {
			channels := []core.Channel{
				{Label: board.SensorCPUFull, Kind: core.Current},
				{Label: board.SensorCPULow, Kind: core.Current},
				{Label: board.SensorFPGA, Kind: core.Current},
				{Label: board.SensorDDR, Kind: core.Current},
			}
			caps, err := core.CollectDPUTraces(core.FingerprintConfig{
				Seed:           *seed,
				Models:         []string{"MobileNet-V1", "SqueezeNet-1.1", "EfficientNet-Lite0", "Inception-V3", "ResNet-50", "VGG-19"},
				TracesPerModel: 1,
				TraceDuration:  5 * time.Second,
				Durations:      []time.Duration{5 * time.Second},
				Folds:          1,
				Channels:       channels,
				Parallelism:    *parallel,
				Faults:         profile,
			})
			if err != nil {
				return err
			}
			return report.RenderFig3(out, caps, channels)
		})
		run("table3", func() error {
			res, err := core.Fingerprint(core.FingerprintConfig{
				Seed:           *seed,
				TracesPerModel: *traces,
				Parallelism:    *parallel,
				Faults:         profile,
			})
			if err != nil {
				return err
			}
			return report.RenderTableIII(out, res, core.SensitiveChannels(),
				[]time.Duration{time.Second, 2 * time.Second, 3 * time.Second,
					4 * time.Second, 5 * time.Second})
		})
		run("fig4", func() error {
			n := *samples
			if n == 0 {
				n = 5000
			}
			if *paperScale {
				n = 100000
			}
			res, err := core.RSAHammingWeight(core.RSAConfig{Seed: *seed, Samples: n})
			if err != nil {
				return err
			}
			return report.RenderFig4(out, res)
		})
		run("applicability", func() error {
			rows, err := core.Applicability(core.ApplicabilityConfig{
				Seed:        *seed,
				Parallelism: *parallel,
				Faults:      profile,
			})
			if err != nil {
				return err
			}
			return report.RenderApplicability(out, rows)
		})
		run("tvla", func() error {
			plain, err := core.AssessRSALeakage(core.LeakageConfig{Seed: *seed})
			if err != nil {
				return err
			}
			ladder, err := core.AssessRSALeakage(core.LeakageConfig{Seed: *seed, Countermeasure: true})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "TVLA fixed-vs-random over FPGA current:\n")
			fmt.Fprintf(out, "  square-and-multiply victim: t=%+.1f leaks=%v SNR=%.0f\n",
				plain.TVLA.T, plain.TVLA.Leaks, plain.SNR)
			fmt.Fprintf(out, "  Montgomery-ladder victim:   t=%+.1f leaks=%v SNR=%.2f\n",
				ladder.TVLA.T, ladder.TVLA.Leaks, ladder.SNR)
			return nil
		})
		run("mitigation", func() error {
			res, err := core.Mitigation(*seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "Mitigation (Sec. V): before: attacker reads %.3f A; after restriction: attacker error %q; root still reads %.3f A; effective=%v\n",
				res.BeforeAttacker, res.AfterAttackerErr, res.AfterRoot, res.Effective())
			return nil
		})
		return firstErr
	}

	// Artifacts are collected when anything downstream consumes them;
	// each repeat starts from a clean registry so its counters describe
	// exactly one pass (and deterministic counters are comparable
	// between repeats and against the baseline).
	collectArtifacts := *jsonOut != "" || *compare
	var arts []perf.Artifact
	for rep := 0; rep < *repeat; rep++ {
		out := io.Writer(os.Stdout)
		if rep > 0 {
			out = io.Discard
		}
		obs.Default.Reset()
		repStart := time.Now()
		if err := experiments(out); err != nil {
			fail(err)
		}
		if !collectArtifacts {
			continue
		}
		pb, err := benchParallel(*seed, *parallel)
		if err != nil {
			fail(fmt.Errorf("parallel bench: %w", err))
		}
		sb, err := benchSpectrum(*seed)
		if err != nil {
			fail(fmt.Errorf("spectrum bench: %w", err))
		}
		arts = append(arts, makeArtifact(*exp, *seed, time.Since(repStart), pb, sb))
	}

	if *jsonOut != "" {
		if err := perf.WriteFile(*jsonOut, arts); err != nil {
			fail(err)
		}
		fmt.Printf("perf artifact written to %s (%d repeat(s))\n", *jsonOut, len(arts))
	}
	if *traceOut != "" {
		if err := export.WriteFile(*traceOut, obs.Default.Snapshot()); err != nil {
			fail(err)
		}
		fmt.Printf("trace timeline written to %s\n", *traceOut)
	}
	if *ledgerPath != "" {
		faultProfile := ""
		intensity := 0.0
		if profile != nil {
			faultProfile = *faultsName
			intensity = 1
		}
		workers := *parallel
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		m := ledger.New(ledger.RunInfo{
			Tool:           "benchtab",
			Command:        *exp,
			Args:           os.Args[1:],
			Board:          "zcu102",
			Seed:           *seed,
			FaultProfile:   faultProfile,
			FaultIntensity: intensity,
			Workers:        workers,
			Started:        start,
			Wall:           time.Since(start),
		}, obs.Default.Snapshot())
		if err := ledger.Append(*ledgerPath, m); err != nil {
			fail(err)
		}
		fmt.Printf("run manifest appended to %s\n", *ledgerPath)
	}
	if *compare {
		base, err := perf.ReadFile(*baseline)
		if err != nil {
			fail(err)
		}
		cmp, err := perf.Compare(base, arts, *regressPct)
		if err != nil {
			fail(err)
		}
		if err := report.RenderPerfComparison(os.Stdout, cmp); err != nil {
			fail(err)
		}
		if cmp.Failed() {
			fmt.Fprintln(os.Stderr, "benchtab: perf comparison FAILED")
			os.Exit(1)
		}
	}
}

// benchParallel runs the cross-board applicability sweep twice — once
// on a single worker, once on the requested worker count — and measures
// aggregate engine throughput for each from the obs sim.ticks delta.
func benchParallel(seed int64, workers int) (*perf.ParallelBench, error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	measure := func(w int) (float64, error) {
		before := obs.Default.Snapshot().Counter("sim.ticks")
		start := time.Now()
		if _, err := core.Applicability(core.ApplicabilityConfig{
			Seed:        seed,
			Parallelism: w,
		}); err != nil {
			return 0, err
		}
		wall := time.Since(start).Seconds()
		ticks := obs.Default.Snapshot().Counter("sim.ticks") - before
		if wall <= 0 {
			return 0, nil
		}
		return float64(ticks) / wall, nil
	}
	serial, err := measure(1)
	if err != nil {
		return nil, err
	}
	par, err := measure(workers)
	if err != nil {
		return nil, err
	}
	pb := &perf.ParallelBench{
		Workers:             workers,
		SerialTicksPerSec:   serial,
		ParallelTicksPerSec: par,
	}
	if serial > 0 {
		pb.Speedup = par / serial
	}
	return pb, nil
}

// benchSpectrum times the spectral transform at the paper-scale shape —
// a 5 s capture at the root-retuned 2 ms interval (10000 samples),
// bins up to Nyquist (2500) — once through the production FFT path and
// once through the Goertzel reference. It runs on a synthetic trace and
// touches no simulation or obs state, so it cannot perturb the
// deterministic-counter gate.
func benchSpectrum(seed int64) (*perf.SpectrumBench, error) {
	const (
		samples = 10000
		bins    = 2500
	)
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Interval: 2 * time.Millisecond, Samples: make([]float64, samples)}
	for i := range tr.Samples {
		tr.Samples[i] = 1.5 + math.Sin(2*math.Pi*7*float64(i)/samples) + 0.1*rng.NormFloat64()
	}
	timeIt := func(f func() error, minReps int, minWall time.Duration) (float64, error) {
		if err := f(); err != nil { // warm scratch pools, page in code
			return 0, err
		}
		reps := 0
		start := time.Now()
		for reps < minReps || time.Since(start) < minWall {
			if err := f(); err != nil {
				return 0, err
			}
			reps++
		}
		wall := time.Since(start).Seconds()
		if wall <= 0 {
			return 0, nil
		}
		return float64(bins) * float64(reps) / wall, nil
	}
	fftRate, err := timeIt(func() error { _, err := tr.Spectrum(bins); return err }, 10, 200*time.Millisecond)
	if err != nil {
		return nil, err
	}
	goertzelRate, err := timeIt(func() error { _, err := tr.SpectrumGoertzel(bins); return err }, 2, 200*time.Millisecond)
	if err != nil {
		return nil, err
	}
	sb := &perf.SpectrumBench{
		Samples:            samples,
		Bins:               bins,
		GoertzelBinsPerSec: goertzelRate,
		FFTBinsPerSec:      fftRate,
	}
	if goertzelRate > 0 {
		sb.Speedup = fftRate / goertzelRate
	}
	return sb, nil
}

// makeArtifact snapshots the obs registry and derives the headline
// throughput numbers the perf trajectory tracks.
func makeArtifact(exp string, seed int64, wall time.Duration, pb *perf.ParallelBench, sb *perf.SpectrumBench) perf.Artifact {
	snap := obs.Default.Snapshot()
	art := perf.Artifact{
		SchemaVersion: perf.SchemaVersion,
		Experiment:    exp,
		Seed:          seed,
		WallSeconds:   wall.Seconds(),
		SimTicks:      snap.Counter("sim.ticks"),
		Parallel:      pb,
		Spectrum:      sb,
		Obs:           snap,
	}
	if wall > 0 {
		art.TicksPerSec = float64(art.SimTicks) / wall.Seconds()
	}
	if engineWall := snap.Counter("sim.walltime_ns"); engineWall > 0 {
		art.SimWallRatio = float64(snap.Counter("sim.simtime_ns")) / float64(engineWall)
	}
	if h, ok := snap.Histogram("attacker.sample_rate_hz"); ok {
		art.SampleRate = h
	}
	return art
}
