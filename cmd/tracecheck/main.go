// Command tracecheck validates that a file parses as Chrome
// trace-event JSON (the format written by the -trace-out flag and the
// obs server's /trace endpoint). It exits non-zero when the file would
// not load in chrome://tracing or Perfetto, which is what CI's trace
// smoke step checks after exporting a timeline.
//
// Usage:
//
//	tracecheck FILE...
package main

import (
	"fmt"
	"os"

	"repro/internal/obs/export"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE...")
		os.Exit(2)
	}
	status := 0
	for _, path := range os.Args[1:] {
		if err := export.ValidateFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			status = 1
			continue
		}
		fmt.Printf("ok   %s\n", path)
	}
	os.Exit(status)
}
