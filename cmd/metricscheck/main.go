// Command metricscheck validates the obs HTTP surface with the
// repository's own parsers. It is the CI smoke-test companion of the
// obs endpoints:
//
//   - OpenMetrics text (/metrics): scrape, validate structure (TYPE
//     metadata, counter conventions, histogram bucket monotonicity, the
//     # EOF terminator), and optionally require specific families.
//   - SSE snapshots (/metrics/stream): read N frames and validate each
//     embedded snapshot's invariants (-stream N).
//   - History JSON (/metrics/range, /metrics/query): decode and run the
//     schema validators (-range / -query).
//
// Usage:
//
//	metricscheck FILE                 # validate a saved exposition
//	metricscheck -url http://host:port/metrics
//	metricscheck -require sim_ticks,core_sampler_samples FILE
//	some-scraper | metricscheck -     # validate stdin
//	metricscheck -stream 3 -url http://host:port
//	curl -s '.../metrics/range?...' | metricscheck -range -
//	metricscheck -query -url 'http://host:port/metrics/query?series=...&fn=rate'
//
// Exit status: 0 valid, 1 invalid or unreachable, 2 usage error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/openmetrics"
)

func main() {
	url := flag.String("url", "", "scrape this URL instead of reading a file (for -stream: the server base URL)")
	require := flag.String("require", "", "comma-separated family names that must be present")
	quiet := flag.Bool("q", false, "suppress the summary line (errors still print)")
	timeout := flag.Duration("timeout", 10*time.Second, "HTTP timeout for -url")
	streamN := flag.Int("stream", 0, "read this many SSE frames from /metrics/stream and validate each snapshot")
	rangeMode := flag.Bool("range", false, "validate a /metrics/range JSON response instead of an OpenMetrics exposition")
	queryMode := flag.Bool("query", false, "validate a /metrics/query JSON response instead of an OpenMetrics exposition")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "metricscheck: "+format+"\n", args...)
		os.Exit(1)
	}
	modes := 0
	for _, on := range []bool{*streamN > 0, *rangeMode, *queryMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "metricscheck: -stream, -range and -query are mutually exclusive")
		os.Exit(2)
	}
	if *streamN > 0 {
		if *url == "" {
			fmt.Fprintln(os.Stderr, "metricscheck: -stream needs -url pointing at a running obs server")
			os.Exit(2)
		}
		if err := checkStream(*url, *streamN, *timeout, *quiet); err != nil {
			fail("%v", err)
		}
		return
	}

	var in io.ReadCloser
	var src string
	switch {
	case *url != "":
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "metricscheck: -url and a file argument are mutually exclusive")
			os.Exit(2)
		}
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*url)
		if err != nil {
			fail("%v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("%s: %s", *url, resp.Status)
		}
		in, src = resp.Body, *url
	case flag.NArg() == 1 && flag.Arg(0) == "-":
		in, src = os.Stdin, "stdin"
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-url URL | FILE | -] [-require fam1,fam2] [-stream N | -range | -query]")
		os.Exit(2)
	}

	if *rangeMode || *queryMode {
		if err := checkHistoryJSON(in, src, *rangeMode, *quiet); err != nil {
			fail("%v", err)
		}
		return
	}

	e, err := openmetrics.Parse(in)
	if err != nil {
		fail("%s: %v", src, err)
	}
	if err := e.Validate(); err != nil {
		fail("%s: %v", src, err)
	}
	if *require != "" {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && e.Family(name) == nil {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			fail("%s: missing required families: %s (have: %s)",
				src, strings.Join(missing, ", "), strings.Join(e.Names(), ", "))
		}
	}
	if !*quiet {
		samples := 0
		for _, f := range e.Families {
			samples += len(f.Samples)
		}
		fmt.Printf("%s: valid OpenMetrics exposition: %d families, %d samples\n",
			src, len(e.Families), samples)
	}
}

// checkHistoryJSON decodes a /metrics/range or /metrics/query response
// and runs its schema validator.
func checkHistoryJSON(in io.Reader, src string, isRange, quiet bool) error {
	data, err := io.ReadAll(in)
	if err != nil {
		return fmt.Errorf("%s: %v", src, err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if isRange {
		var rr obs.RangeResponse
		if err := dec.Decode(&rr); err != nil {
			return fmt.Errorf("%s: decoding range response: %v", src, err)
		}
		if err := rr.Validate(); err != nil {
			return fmt.Errorf("%s: %v", src, err)
		}
		if !quiet {
			points, windows := 0, 0
			for _, sr := range rr.Series {
				points += len(sr.Points)
				windows += len(sr.Windows)
			}
			fmt.Printf("%s: valid range response: %d series, %d points, %d windows (%s clock)\n",
				src, len(rr.Series), points, windows, rr.Clock)
		}
		return nil
	}
	var qr obs.QueryResponse
	if err := dec.Decode(&qr); err != nil {
		return fmt.Errorf("%s: decoding query response: %v", src, err)
	}
	if err := qr.Validate(); err != nil {
		return fmt.Errorf("%s: %v", src, err)
	}
	if !quiet {
		fmt.Printf("%s: valid query response: fn=%s series=%s, %d points over %d samples\n",
			src, qr.Fn, qr.SeriesName, len(qr.Points), qr.Count)
	}
	return nil
}

// checkStream connects to baseURL's /metrics/stream SSE endpoint, reads
// n frames, and validates each embedded snapshot.
func checkStream(baseURL string, n int, timeout time.Duration, quiet bool) error {
	base := baseURL
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u := strings.TrimRight(base, "/")
	if !strings.Contains(u, "/metrics/stream") {
		u += "/metrics/stream"
	}
	client := &http.Client{Timeout: timeout}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	frames := 0
	var data strings.Builder
	for sc.Scan() && frames < n {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() == 0 {
				continue
			}
			frames++
			var snap obs.Snapshot
			if err := json.Unmarshal([]byte(data.String()), &snap); err != nil {
				return fmt.Errorf("%s: frame %d: decoding snapshot: %v", u, frames, err)
			}
			if err := validateSnapshot(snap); err != nil {
				return fmt.Errorf("%s: frame %d: %v", u, frames, err)
			}
			data.Reset()
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		}
	}
	if err := sc.Err(); err != nil && frames < n {
		return fmt.Errorf("%s: after %d frame(s): %v", u, frames, err)
	}
	if frames < n {
		return fmt.Errorf("%s: stream ended after %d of %d frame(s)", u, frames, n)
	}
	if !quiet {
		fmt.Printf("%s: %d valid snapshot frame(s)\n", u, frames)
	}
	return nil
}

// validateSnapshot checks the structural invariants every snapshot
// frame must satisfy, whatever the workload.
func validateSnapshot(s obs.Snapshot) error {
	if s.TakenAt.IsZero() {
		return fmt.Errorf("snapshot has a zero taken_at timestamp")
	}
	for name, v := range s.Counters {
		if name == "" {
			return fmt.Errorf("snapshot has an unnamed counter")
		}
		if v < 0 {
			return fmt.Errorf("counter %s is negative (%d)", name, v)
		}
	}
	for name, h := range s.Histograms {
		if h.Count < 0 {
			return fmt.Errorf("histogram %s has negative count %d", name, h.Count)
		}
		if h.Count == 0 {
			continue
		}
		if h.Min > h.Max {
			return fmt.Errorf("histogram %s: min %g > max %g", name, h.Min, h.Max)
		}
		if h.Mean < h.Min || h.Mean > h.Max {
			return fmt.Errorf("histogram %s: mean %g outside [%g, %g]", name, h.Mean, h.Min, h.Max)
		}
		for _, q := range []struct {
			name string
			v    float64
		}{{"p50", h.P50}, {"p95", h.P95}, {"p99", h.P99}} {
			if q.v < h.Min || q.v > h.Max {
				return fmt.Errorf("histogram %s: %s %g outside [%g, %g]", name, q.name, q.v, h.Min, h.Max)
			}
		}
		if h.P50 > h.P95 || h.P95 > h.P99 {
			return fmt.Errorf("histogram %s: quantiles not monotone (p50 %g, p95 %g, p99 %g)",
				name, h.P50, h.P95, h.P99)
		}
	}
	return nil
}
