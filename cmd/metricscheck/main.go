// Command metricscheck validates an OpenMetrics text exposition with
// the repository's own parser (internal/obs/openmetrics). It is the CI
// smoke-test companion of the obs /metrics endpoint: scrape, validate
// structure (TYPE metadata, counter conventions, histogram bucket
// monotonicity, the # EOF terminator), and optionally require specific
// families to be present.
//
// Usage:
//
//	metricscheck FILE                 # validate a saved exposition
//	metricscheck -url http://host:port/metrics
//	metricscheck -require sim_ticks,core_sampler_samples FILE
//	some-scraper | metricscheck -     # validate stdin
//
// Exit status: 0 valid, 1 invalid or unreachable, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs/openmetrics"
)

func main() {
	url := flag.String("url", "", "scrape this URL instead of reading a file")
	require := flag.String("require", "", "comma-separated family names that must be present")
	quiet := flag.Bool("q", false, "suppress the summary line (errors still print)")
	timeout := flag.Duration("timeout", 10*time.Second, "HTTP timeout for -url")
	flag.Parse()

	var in io.ReadCloser
	var src string
	switch {
	case *url != "":
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "metricscheck: -url and a file argument are mutually exclusive")
			os.Exit(2)
		}
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "metricscheck: %s: %s\n", *url, resp.Status)
			os.Exit(1)
		}
		in, src = resp.Body, *url
	case flag.NArg() == 1 && flag.Arg(0) == "-":
		in, src = os.Stdin, "stdin"
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-url URL | FILE | -] [-require fam1,fam2]")
		os.Exit(2)
	}

	e, err := openmetrics.Parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %s: %v\n", src, err)
		os.Exit(1)
	}
	if err := e.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %s: %v\n", src, err)
		os.Exit(1)
	}
	if *require != "" {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && e.Family(name) == nil {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "metricscheck: %s: missing required families: %s (have: %s)\n",
				src, strings.Join(missing, ", "), strings.Join(e.Names(), ", "))
			os.Exit(1)
		}
	}
	if !*quiet {
		samples := 0
		for _, f := range e.Families {
			samples += len(f.Samples)
		}
		fmt.Printf("%s: valid OpenMetrics exposition: %d families, %d samples\n",
			src, len(e.Families), samples)
	}
}
